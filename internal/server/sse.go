package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/campaign"
)

// handleEvents streams a campaign's live activity as Server-Sent
// Events. Three event types interleave:
//
//   - "trace":     structured pipeline events (verdicts, retries,
//     faults, breaker transitions, chaos injections) drained from the
//     campaign's trace ring, cursor-tracked by event ID so nothing in
//     the retained window is dropped or repeated;
//   - "heartbeat": the same one-line progress summary the CLIs print
//     (units/s, bugs, breakers, journal lag) plus the full Status
//     snapshot as JSON, at the server's heartbeat cadence;
//   - "done":      the terminal state, after which the stream closes.
//
// The stream is observational: it polls the trace ring rather than
// hooking the pipeline, so a slow SSE consumer can never backpressure
// the campaign (unlike a throttled tenant's Gate, which is meant to).
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	t, err := s.tenantFor(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	h := s.lookup(t, r.PathValue("id"))
	if h == nil {
		http.NotFound(w, r)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	poll := time.NewTicker(150 * time.Millisecond)
	defer poll.Stop()
	beat := time.NewTicker(s.opts.Heartbeat)
	defer beat.Stop()

	cursor := h.trace.Total() - int64(s.opts.TraceCapacity)
	if cursor < 0 {
		cursor = 0
	}
	prev := h.camp.Status()
	lastBeat := time.Now()
	emit := func(event string, v any) bool {
		raw, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, raw); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	for {
		select {
		case <-r.Context().Done():
			return
		case <-h.camp.Done():
			// Drain what the ring still holds, then close with the
			// terminal state.
			cursor = s.emitTrace(h, cursor, emit)
			emit("done", h.camp.Status())
			return
		case <-poll.C:
			if cursor = s.emitTrace(h, cursor, emit); cursor < 0 {
				return
			}
		case now := <-beat.C:
			cur := h.camp.Status()
			if !emit("heartbeat", heartbeatEvent{
				Line:   campaign.HeartbeatLine(prev, cur, now.Sub(lastBeat)),
				Status: cur,
			}) {
				return
			}
			prev, lastBeat = cur, now
		}
	}
}

// heartbeatEvent is one SSE heartbeat payload: the human-readable line
// the CLIs print, plus the structured snapshot it was rendered from.
type heartbeatEvent struct {
	Line   string          `json:"line"`
	Status campaign.Status `json:"status"`
}

// emitTrace streams ring events past the cursor, returning the new
// cursor (or -1 when the client is gone). If the consumer fell behind
// the ring's retained window the gap is skipped — the ring already
// overwrote it.
func (s *Server) emitTrace(h *hosted, cursor int64, emit func(string, any) bool) int64 {
	total := h.trace.Total()
	if total <= cursor {
		return cursor
	}
	fresh := total - cursor
	if fresh > int64(s.opts.TraceCapacity) {
		fresh = int64(s.opts.TraceCapacity)
	}
	for _, e := range h.trace.Tail(int(fresh)) {
		if e.ID < cursor {
			continue
		}
		if !emit("trace", e) {
			return -1
		}
	}
	return total
}
