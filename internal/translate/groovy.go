package translate

import (
	"strings"

	"repro/internal/ir"
	"repro/internal/types"
)

// Groovy renders IR programs as statically compiled Groovy source: every
// class and method carries @groovy.transform.CompileStatic (the paper
// targets groovyc's static type-checking, not its dynamic mode), omitted
// local types become def, blocks in expression position become
// immediately-invoked closures, lambdas become closures, and method
// references use the .& operator.
type Groovy struct {
	callable map[string]bool
}

// NewGroovy returns the Groovy translator.
func NewGroovy() *Groovy { return &Groovy{} }

func (*Groovy) Name() string    { return "groovy" }
func (*Groovy) FileExt() string { return ".groovy" }

// Translate renders p as a Groovy file.
func (g *Groovy) Translate(p *ir.Program) string {
	g.callable = map[string]bool{}
	for _, f := range ir.AllMethods(p) {
		g.callable[f.Name] = true
	}
	w := newWriter(g.typ, g.constant)
	if p.Package != "" {
		w.linef("package %s", p.Package)
		w.blank()
	}
	for _, d := range p.Decls {
		if cls, ok := d.(*ir.ClassDecl); ok {
			g.class(w, cls)
			w.blank()
		}
	}
	w.line("@groovy.transform.CompileStatic")
	w.line("class Globals {")
	w.indent++
	for _, d := range p.Decls {
		switch t := d.(type) {
		case *ir.FuncDecl:
			g.method(w, t, true)
			w.blank()
		case *ir.VarDecl:
			w.lineStart()
			w.ws("static ")
			if t.DeclType != nil {
				w.ws(g.typ(t.DeclType))
			} else {
				w.ws("def")
			}
			w.ws(" ")
			w.ws(t.Name)
			w.ws(" = ")
			w.expr(t.Init, g)
			w.lineEnd()
		}
	}
	w.indent--
	w.line("}")
	return w.finish()
}

func (g *Groovy) typ(t types.Type) string {
	switch tt := t.(type) {
	case types.Top:
		return "Object"
	case types.Bottom:
		return "Object"
	case *types.Simple:
		if tt.Builtin {
			switch tt.TypeName {
			case "Int":
				return "Integer"
			case "Char":
				return "Character"
			case "Unit":
				return "void"
			}
		}
		return tt.TypeName
	case *types.Parameter:
		return tt.ParamName
	case *types.Constructor:
		return tt.TypeName
	case *types.App:
		parts := make([]string, len(tt.Args))
		for i, a := range tt.Args {
			parts[i] = g.typ(a)
		}
		return tt.Ctor.TypeName + "<" + strings.Join(parts, ", ") + ">"
	case *types.Projection:
		if tt.Var == types.Covariant {
			return "? extends " + g.typ(tt.Bound)
		}
		return "? super " + g.typ(tt.Bound)
	case *types.Func:
		return "groovy.lang.Closure<" + g.typ(tt.Ret) + ">"
	case *types.Intersection:
		if len(tt.Members) > 0 {
			return g.typ(tt.Members[0])
		}
		return "Object"
	}
	return "Object"
}

func (g *Groovy) constant(t types.Type) string {
	if s, ok := t.(*types.Simple); ok && s.Builtin {
		switch s.TypeName {
		case "Byte":
			return "(byte) 1"
		case "Short":
			return "(short) 1"
		case "Int":
			return "1"
		case "Long":
			return "1L"
		case "Float":
			return "1.0f"
		case "Double":
			return "1.0d"
		case "Boolean":
			return "true"
		case "Char":
			return "(char) 'c'"
		case "String":
			return "\"s\""
		case "Number":
			return "(Number) 1"
		case "Unit":
			return "null"
		}
	}
	if _, ok := t.(types.Bottom); ok {
		return "null"
	}
	return "(null as " + g.typ(t) + ")"
}

func (g *Groovy) typeParams(ps []*types.Parameter) string {
	if len(ps) == 0 {
		return ""
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		s := p.ParamName // Groovy generics follow Java: no decl-site variance
		if p.Bound != nil {
			s += " extends " + g.typ(p.Bound)
		}
		parts[i] = s
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func (g *Groovy) class(w *writer, c *ir.ClassDecl) {
	w.line("@groovy.transform.CompileStatic")
	head := ""
	switch c.Kind {
	case ir.InterfaceClass:
		head = "interface "
	case ir.AbstractClass:
		head = "abstract class "
	default:
		if !c.Open {
			head = "final "
		}
		head += "class "
	}
	line := head + c.Name + g.typeParams(c.TypeParams)
	if c.Super != nil {
		line += " extends " + g.typ(c.Super.Type)
	}
	w.line(line + " {")
	w.indent++
	for _, f := range c.Fields {
		w.linef("%s %s", g.typ(f.Type), f.Name)
	}
	if c.Kind == ir.RegularClass && (len(c.Fields) > 0 || c.Super != nil) {
		params := make([]string, len(c.Fields))
		for i, f := range c.Fields {
			params[i] = g.typ(f.Type) + " " + f.Name
		}
		w.linef("%s(%s) {", c.Name, strings.Join(params, ", "))
		w.indent++
		if c.Super != nil && len(c.Super.Args) > 0 {
			w.lineStart()
			w.ws("super")
			w.exprList(c.Super.Args, g)
			w.lineEnd()
		}
		for _, f := range c.Fields {
			w.linef("this.%s = %s", f.Name, f.Name)
		}
		w.indent--
		w.line("}")
	}
	for _, m := range c.Methods {
		g.method(w, m, false)
	}
	w.indent--
	w.line("}")
}

func (g *Groovy) method(w *writer, f *ir.FuncDecl, static bool) {
	ret := "def"
	if f.Ret != nil {
		ret = g.typ(f.Ret)
	}
	head := ""
	if static {
		head = "static "
	}
	if tp := g.typeParams(f.TypeParams); tp != "" {
		head += "public " + tp + " " // Groovy needs a modifier before <T>
	}
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = g.typ(p.Type) + " " + p.Name
	}
	head += ret + " " + f.Name + "(" + strings.Join(params, ", ") + ")"
	if f.Body == nil {
		w.line(head)
		return
	}
	w.line(head + " {")
	w.indent++
	g.statementBody(w, f.Body, ret == "void")
	w.indent--
	w.line("}")
}

func (g *Groovy) statementBody(w *writer, body ir.Expr, void bool) {
	if b, ok := body.(*ir.Block); ok {
		for _, s := range b.Stmts {
			g.statement(w, s)
		}
		if b.Value != nil {
			g.returnOrDiscard(w, b.Value, void)
		}
		return
	}
	g.returnOrDiscard(w, body, void)
}

func (g *Groovy) returnOrDiscard(w *writer, e ir.Expr, void bool) {
	if void {
		if c, ok := e.(*ir.Const); ok {
			if s, isSimple := c.Type.(*types.Simple); isSimple && s.TypeName == "Unit" {
				return
			}
		}
		w.lineStart()
		w.expr(e, g)
		w.lineEnd()
		return
	}
	w.lineStart()
	w.ws("return ")
	w.expr(e, g)
	w.lineEnd()
}

func (g *Groovy) statement(w *writer, s ir.Node) {
	switch st := s.(type) {
	case *ir.VarDecl:
		w.lineStart()
		if st.DeclType != nil {
			w.ws(g.typ(st.DeclType))
		} else {
			w.ws("def")
		}
		w.ws(" ")
		w.ws(st.Name)
		w.ws(" = ")
		w.expr(st.Init, g)
		w.lineEnd()
	case ir.Expr:
		w.lineStart()
		w.expr(st, g)
		w.lineEnd()
	}
}

// ----- expression rendering -----

func (g *Groovy) renderNew(w *writer, n *ir.New) {
	w.ws("new ")
	w.ws(n.Class.Name())
	if _, param := n.Class.(*types.Constructor); param {
		if n.TypeArgs == nil {
			w.ws("<>")
		} else {
			w.ws("<")
			for i, a := range n.TypeArgs {
				if i > 0 {
					w.ws(", ")
				}
				w.ws(g.typ(a))
			}
			w.ws(">")
		}
	}
	w.exprList(n.Args, g)
}

func (g *Groovy) renderCall(w *writer, c *ir.Call) {
	targs := ""
	if len(c.TypeArgs) > 0 {
		parts := make([]string, len(c.TypeArgs))
		for i, a := range c.TypeArgs {
			parts[i] = g.typ(a)
		}
		targs = "<" + strings.Join(parts, ", ") + ">"
	}
	switch {
	case c.Recv != nil:
		w.expr(c.Recv, g)
		w.ws(".")
		w.ws(targs)
		w.ws(c.Name)
	case !g.callable[c.Name]:
		// Invoking a closure-typed variable: closure() or closure.call().
		w.ws(c.Name)
		w.ws(".call")
	case targs != "":
		w.ws("Globals.")
		w.ws(targs)
		w.ws(c.Name)
	default:
		w.ws(c.Name)
	}
	w.exprList(c.Args, g)
}

func (g *Groovy) renderLambda(w *writer, l *ir.Lambda) {
	if len(l.Params) == 0 {
		w.ws("{ -> ")
	} else {
		w.ws("{ ")
		for i, p := range l.Params {
			if i > 0 {
				w.ws(", ")
			}
			if p.Type != nil {
				w.ws(g.typ(p.Type))
				w.ws(" ")
			}
			w.ws(p.Name)
		}
		w.ws(" -> ")
	}
	w.expr(l.Body, g)
	w.ws(" }")
}

// renderBlock lowers a block in expression position to an
// immediately-invoked closure.
func (g *Groovy) renderBlock(w *writer, b *ir.Block) {
	w.ws("({ ->")
	w.lineEnd()
	w.indent++
	for _, s := range b.Stmts {
		g.statement(w, s)
	}
	if b.Value != nil {
		w.lineStart()
		w.ws("return ")
		w.expr(b.Value, g)
		w.lineEnd()
	} else {
		w.line("return null")
	}
	w.indent--
	w.writeIndent()
	w.ws("})()")
}

func (g *Groovy) renderIf(w *writer, e *ir.If) {
	w.ws("(")
	w.expr(e.Cond, g)
	w.ws(" ? ")
	w.expr(e.Then, g)
	w.ws(" : ")
	w.expr(e.Else, g)
	w.ws(")")
}

func (g *Groovy) renderCast(w *writer, c *ir.Cast) {
	w.ws("(")
	w.expr(c.Expr, g)
	w.ws(" as ")
	w.ws(g.typ(c.Target))
	w.ws(")")
}

func (g *Groovy) renderIs(w *writer, c *ir.Is) {
	w.ws("(")
	w.expr(c.Expr, g)
	w.ws(" instanceof ")
	w.ws(c.Target.Name())
	w.ws(")")
}

func (g *Groovy) renderMethodRef(w *writer, m *ir.MethodRef) {
	w.expr(m.Recv, g)
	w.ws(".&")
	w.ws(m.Method)
}
