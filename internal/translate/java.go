package translate

import (
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/types"
)

// Java renders IR programs as Java source. Top-level functions become
// static methods of a Globals class; expression-bodied functions become
// return statements; IR blocks in expression position are lowered to
// immediately-invoked java.util.function lambdas (typed with the reference
// checker's recorded expression types); function types map onto
// Supplier/Function/BiFunction; declaration-site variance is erased (Java
// has only use-site wildcards).
type Java struct {
	exprTypes map[ir.Expr]types.Type
	callable  map[string]bool
	tmpN      int
}

// NewJava returns the Java translator.
func NewJava() *Java { return &Java{} }

func (*Java) Name() string    { return "java" }
func (*Java) FileExt() string { return ".java" }

// Translate renders p as a Java file.
func (j *Java) Translate(p *ir.Program) string {
	res := checker.Check(p, types.NewBuiltins(), checker.Options{RecordTypes: true})
	j.exprTypes = res.ExprTypes
	j.callable = map[string]bool{}
	j.tmpN = 0
	for _, f := range ir.AllMethods(p) {
		j.callable[f.Name] = true
	}

	w := &writer{typeFn: j.typ, constFn: j.constant}
	if p.Package != "" {
		w.linef("package %s;", p.Package)
		w.blank()
	}
	for _, d := range p.Decls {
		if cls, ok := d.(*ir.ClassDecl); ok {
			j.class(w, cls)
			w.blank()
		}
	}
	// Top-level functions and variables live in a Globals holder.
	w.line("class Globals {")
	w.indent++
	for _, d := range p.Decls {
		switch t := d.(type) {
		case *ir.FuncDecl:
			j.method(w, t, true)
			w.blank()
		case *ir.VarDecl:
			line := "static "
			if t.DeclType != nil {
				line += j.typ(t.DeclType)
			} else {
				line += "var"
			}
			line += " " + t.Name + " = " + w.expr(t.Init, j) + ";"
			w.line(line)
		}
	}
	w.indent--
	w.line("}")
	return w.String()
}

func (j *Java) typ(t types.Type) string {
	switch tt := t.(type) {
	case types.Top:
		return "Object"
	case types.Bottom:
		return "Void"
	case *types.Simple:
		if tt.Builtin {
			switch tt.TypeName {
			case "Int":
				return "Integer"
			case "Char":
				return "Character"
			case "Unit":
				return "void"
			}
		}
		return tt.TypeName
	case *types.Parameter:
		return tt.ParamName
	case *types.Constructor:
		return tt.TypeName
	case *types.App:
		parts := make([]string, len(tt.Args))
		for i, a := range tt.Args {
			parts[i] = j.typ(a)
		}
		return tt.Ctor.TypeName + "<" + strings.Join(parts, ", ") + ">"
	case *types.Projection:
		if tt.Var == types.Covariant {
			return "? extends " + j.typ(tt.Bound)
		}
		return "? super " + j.typ(tt.Bound)
	case *types.Func:
		return j.funcInterface(tt)
	case *types.Intersection:
		if len(tt.Members) > 0 {
			return j.typ(tt.Members[0])
		}
		return "Object"
	}
	return "Object"
}

// funcInterface maps an IR function type to java.util.function.
func (j *Java) funcInterface(f *types.Func) string {
	ret := j.typ(f.Ret)
	switch len(f.Params) {
	case 0:
		return "java.util.function.Supplier<" + ret + ">"
	case 1:
		return "java.util.function.Function<" + j.typ(f.Params[0]) + ", " + ret + ">"
	case 2:
		return "java.util.function.BiFunction<" + j.typ(f.Params[0]) + ", " +
			j.typ(f.Params[1]) + ", " + ret + ">"
	default:
		return "Object /* unsupported arity */"
	}
}

func (j *Java) constant(t types.Type) string {
	if s, ok := t.(*types.Simple); ok && s.Builtin {
		switch s.TypeName {
		case "Byte":
			return "(byte) 1"
		case "Short":
			return "(short) 1"
		case "Int":
			return "1"
		case "Long":
			return "1L"
		case "Float":
			return "1.0f"
		case "Double":
			return "1.0"
		case "Boolean":
			return "true"
		case "Char":
			return "'c'"
		case "String":
			return "\"s\""
		case "Number":
			return "(Number) 1"
		case "Unit":
			return "/* unit */"
		}
	}
	if _, ok := t.(types.Bottom); ok {
		return "null"
	}
	return "((" + j.typ(t) + ") null)"
}

func (j *Java) typeParams(ps []*types.Parameter) string {
	if len(ps) == 0 {
		return ""
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		s := p.ParamName // declaration-site variance is erased in Java
		if p.Bound != nil {
			s += " extends " + j.typ(p.Bound)
		}
		parts[i] = s
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func (j *Java) class(w *writer, c *ir.ClassDecl) {
	head := ""
	switch c.Kind {
	case ir.InterfaceClass:
		head = "interface "
	case ir.AbstractClass:
		head = "abstract class "
	default:
		if !c.Open {
			head = "final "
		}
		head += "class "
	}
	line := head + c.Name + j.typeParams(c.TypeParams)
	if c.Super != nil {
		verb := " extends "
		line += verb + j.typ(c.Super.Type)
	}
	w.line(line + " {")
	w.indent++
	for _, f := range c.Fields {
		w.linef("%s %s;", j.typ(f.Type), f.Name)
	}
	if c.Kind == ir.RegularClass && (len(c.Fields) > 0 || c.Super != nil) {
		params := make([]string, len(c.Fields))
		for i, f := range c.Fields {
			params[i] = j.typ(f.Type) + " " + f.Name
		}
		w.linef("%s(%s) {", c.Name, strings.Join(params, ", "))
		w.indent++
		if c.Super != nil && len(c.Super.Args) > 0 {
			args := make([]string, len(c.Super.Args))
			for i, a := range c.Super.Args {
				args[i] = w.expr(a, j)
			}
			w.linef("super(%s);", strings.Join(args, ", "))
		}
		for _, f := range c.Fields {
			w.linef("this.%s = %s;", f.Name, f.Name)
		}
		w.indent--
		w.line("}")
	}
	for _, m := range c.Methods {
		j.method(w, m, false)
	}
	w.indent--
	w.line("}")
}

func (j *Java) method(w *writer, f *ir.FuncDecl, static bool) {
	ret := "var"
	if f.Ret != nil {
		ret = j.typ(f.Ret)
	} else if t := j.exprTypes[f.Body]; t != nil {
		// Java cannot omit return types; recover the inferred one.
		ret = j.typ(t)
	} else {
		ret = "Object"
	}
	head := ""
	if static {
		head = "static "
	}
	if tp := j.typeParams(f.TypeParams); tp != "" {
		head += tp + " "
	}
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = j.typ(p.Type) + " " + p.Name
	}
	head += ret + " " + f.Name + "(" + strings.Join(params, ", ") + ")"
	if f.Body == nil {
		w.line(head + ";")
		return
	}
	w.line(head + " {")
	w.indent++
	j.statementBody(w, f.Body, ret == "void")
	w.indent--
	w.line("}")
}

// statementBody lowers an expression-bodied function into Java statements.
func (j *Java) statementBody(w *writer, body ir.Expr, void bool) {
	if b, ok := body.(*ir.Block); ok {
		for _, s := range b.Stmts {
			j.statement(w, s)
		}
		if b.Value != nil {
			j.returnOrDiscard(w, b.Value, void)
		}
		return
	}
	j.returnOrDiscard(w, body, void)
}

func (j *Java) returnOrDiscard(w *writer, e ir.Expr, void bool) {
	if void {
		if c, ok := e.(*ir.Const); ok {
			if s, isSimple := c.Type.(*types.Simple); isSimple && s.TypeName == "Unit" {
				return // discard the unit constant
			}
		}
		switch e.(type) {
		case *ir.Call, *ir.New, *ir.Assign:
			w.line(w.expr(e, j) + ";")
		default:
			j.tmpN++
			w.linef("var tmp%d = %s;", j.tmpN, w.expr(e, j))
		}
		return
	}
	w.line("return " + w.expr(e, j) + ";")
}

func (j *Java) statement(w *writer, s ir.Node) {
	switch st := s.(type) {
	case *ir.VarDecl:
		line := "var"
		if st.DeclType != nil {
			line = j.typ(st.DeclType)
		}
		w.line(line + " " + st.Name + " = " + w.expr(st.Init, j) + ";")
	case *ir.Assign:
		w.line(w.expr(st, j) + ";")
	case ir.Expr:
		switch st.(type) {
		case *ir.Call, *ir.New:
			w.line(w.expr(st, j) + ";")
		default:
			j.tmpN++
			w.linef("var tmp%d = %s;", j.tmpN, w.expr(st, j))
		}
	}
}

// ----- expression rendering -----

func (j *Java) renderNew(w *writer, n *ir.New) string {
	name := n.Class.Name()
	if _, param := n.Class.(*types.Constructor); param {
		if n.TypeArgs == nil {
			name += "<>" // diamond
		} else {
			parts := make([]string, len(n.TypeArgs))
			for i, a := range n.TypeArgs {
				parts[i] = j.typ(a)
			}
			name += "<" + strings.Join(parts, ", ") + ">"
		}
	}
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = w.expr(a, j)
	}
	return "new " + name + "(" + strings.Join(args, ", ") + ")"
}

func (j *Java) renderCall(w *writer, c *ir.Call) string {
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = w.expr(a, j)
	}
	argList := "(" + strings.Join(args, ", ") + ")"

	targs := ""
	if len(c.TypeArgs) > 0 {
		parts := make([]string, len(c.TypeArgs))
		for i, a := range c.TypeArgs {
			parts[i] = j.typ(a)
		}
		targs = "<" + strings.Join(parts, ", ") + ">"
	}
	if c.Recv != nil {
		recv := w.expr(c.Recv, j)
		if targs != "" {
			return recv + "." + targs + c.Name + argList
		}
		return recv + "." + c.Name + argList
	}
	if !j.callable[c.Name] {
		// Invocation of a function-typed variable.
		switch len(c.Args) {
		case 0:
			return c.Name + ".get()"
		default:
			return c.Name + ".apply" + argList
		}
	}
	if targs != "" {
		// Unqualified generic calls need explicit qualification in Java.
		return "Globals." + targs + c.Name + argList
	}
	return c.Name + argList
}

func (j *Java) renderLambda(w *writer, l *ir.Lambda) string {
	params := make([]string, len(l.Params))
	for i, p := range l.Params {
		if p.Type != nil {
			params[i] = j.typ(p.Type) + " " + p.Name
		} else {
			params[i] = p.Name
		}
	}
	return "(" + strings.Join(params, ", ") + ") -> " + w.expr(l.Body, j)
}

// renderBlock lowers an expression-position block into an
// immediately-invoked Supplier lambda, typed by the checker's recorded
// type for the block.
func (j *Java) renderBlock(w *writer, b *ir.Block) string {
	blockType := "Object"
	if t := j.exprTypes[b]; t != nil {
		blockType = j.typ(t)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "((java.util.function.Supplier<%s>) () -> {\n", blockType)
	w.indent++
	inner := &writer{typeFn: j.typ, constFn: j.constant, indent: w.indent}
	for _, s := range b.Stmts {
		j.statement(inner, s)
	}
	if b.Value != nil {
		inner.line("return " + inner.expr(b.Value, j) + ";")
	} else {
		inner.line("return null;")
	}
	sb.WriteString(inner.String())
	w.indent--
	sb.WriteString(strings.Repeat("    ", w.indent) + "}).get()")
	return sb.String()
}

func (j *Java) renderIf(w *writer, e *ir.If) string {
	return "(" + w.expr(e.Cond, j) + " ? " + w.expr(e.Then, j) + " : " + w.expr(e.Else, j) + ")"
}

func (j *Java) renderCast(w *writer, c *ir.Cast) string {
	return "((" + j.typ(c.Target) + ") " + w.expr(c.Expr, j) + ")"
}

func (j *Java) renderIs(w *writer, c *ir.Is) string {
	// instanceof requires a reifiable type: use the raw class name.
	return "(" + w.expr(c.Expr, j) + " instanceof " + c.Target.Name() + ")"
}

func (j *Java) renderMethodRef(w *writer, m *ir.MethodRef) string {
	return w.expr(m.Recv, j) + "::" + m.Method
}
