package translate

import (
	"fmt"
	"strings"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/types"
)

// Java renders IR programs as Java source. Top-level functions become
// static methods of a Globals class; expression-bodied functions become
// return statements; IR blocks in expression position are lowered to
// immediately-invoked java.util.function lambdas (typed with the reference
// checker's recorded expression types); function types map onto
// Supplier/Function/BiFunction; declaration-site variance is erased (Java
// has only use-site wildcards).
type Java struct {
	exprTypes map[ir.Expr]types.Type
	callable  map[string]bool
	tmpN      int
}

// NewJava returns the Java translator.
func NewJava() *Java { return &Java{} }

func (*Java) Name() string    { return "java" }
func (*Java) FileExt() string { return ".java" }

// Translate renders p as a Java file.
func (j *Java) Translate(p *ir.Program) string {
	res := checker.Check(p, types.NewBuiltins(), checker.Options{RecordTypes: true})
	j.exprTypes = res.ExprTypes
	j.callable = map[string]bool{}
	j.tmpN = 0
	for _, f := range ir.AllMethods(p) {
		j.callable[f.Name] = true
	}

	w := newWriter(j.typ, j.constant)
	if p.Package != "" {
		w.linef("package %s;", p.Package)
		w.blank()
	}
	for _, d := range p.Decls {
		if cls, ok := d.(*ir.ClassDecl); ok {
			j.class(w, cls)
			w.blank()
		}
	}
	// Top-level functions and variables live in a Globals holder.
	w.line("class Globals {")
	w.indent++
	for _, d := range p.Decls {
		switch t := d.(type) {
		case *ir.FuncDecl:
			j.method(w, t, true)
			w.blank()
		case *ir.VarDecl:
			w.lineStart()
			w.ws("static ")
			if t.DeclType != nil {
				w.ws(j.typ(t.DeclType))
			} else {
				w.ws("var")
			}
			w.ws(" ")
			w.ws(t.Name)
			w.ws(" = ")
			w.expr(t.Init, j)
			w.ws(";")
			w.lineEnd()
		}
	}
	w.indent--
	w.line("}")
	return w.finish()
}

func (j *Java) typ(t types.Type) string {
	switch tt := t.(type) {
	case types.Top:
		return "Object"
	case types.Bottom:
		return "Void"
	case *types.Simple:
		if tt.Builtin {
			switch tt.TypeName {
			case "Int":
				return "Integer"
			case "Char":
				return "Character"
			case "Unit":
				return "void"
			}
		}
		return tt.TypeName
	case *types.Parameter:
		return tt.ParamName
	case *types.Constructor:
		return tt.TypeName
	case *types.App:
		parts := make([]string, len(tt.Args))
		for i, a := range tt.Args {
			parts[i] = j.typ(a)
		}
		return tt.Ctor.TypeName + "<" + strings.Join(parts, ", ") + ">"
	case *types.Projection:
		if tt.Var == types.Covariant {
			return "? extends " + j.typ(tt.Bound)
		}
		return "? super " + j.typ(tt.Bound)
	case *types.Func:
		return j.funcInterface(tt)
	case *types.Intersection:
		if len(tt.Members) > 0 {
			return j.typ(tt.Members[0])
		}
		return "Object"
	}
	return "Object"
}

// funcInterface maps an IR function type to java.util.function.
func (j *Java) funcInterface(f *types.Func) string {
	ret := j.typ(f.Ret)
	switch len(f.Params) {
	case 0:
		return "java.util.function.Supplier<" + ret + ">"
	case 1:
		return "java.util.function.Function<" + j.typ(f.Params[0]) + ", " + ret + ">"
	case 2:
		return "java.util.function.BiFunction<" + j.typ(f.Params[0]) + ", " +
			j.typ(f.Params[1]) + ", " + ret + ">"
	default:
		return "Object /* unsupported arity */"
	}
}

func (j *Java) constant(t types.Type) string {
	if s, ok := t.(*types.Simple); ok && s.Builtin {
		switch s.TypeName {
		case "Byte":
			return "(byte) 1"
		case "Short":
			return "(short) 1"
		case "Int":
			return "1"
		case "Long":
			return "1L"
		case "Float":
			return "1.0f"
		case "Double":
			return "1.0"
		case "Boolean":
			return "true"
		case "Char":
			return "'c'"
		case "String":
			return "\"s\""
		case "Number":
			return "(Number) 1"
		case "Unit":
			return "/* unit */"
		}
	}
	if _, ok := t.(types.Bottom); ok {
		return "null"
	}
	return "((" + j.typ(t) + ") null)"
}

func (j *Java) typeParams(ps []*types.Parameter) string {
	if len(ps) == 0 {
		return ""
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		s := p.ParamName // declaration-site variance is erased in Java
		if p.Bound != nil {
			s += " extends " + j.typ(p.Bound)
		}
		parts[i] = s
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func (j *Java) class(w *writer, c *ir.ClassDecl) {
	head := ""
	switch c.Kind {
	case ir.InterfaceClass:
		head = "interface "
	case ir.AbstractClass:
		head = "abstract class "
	default:
		if !c.Open {
			head = "final "
		}
		head += "class "
	}
	line := head + c.Name + j.typeParams(c.TypeParams)
	if c.Super != nil {
		verb := " extends "
		line += verb + j.typ(c.Super.Type)
	}
	w.line(line + " {")
	w.indent++
	for _, f := range c.Fields {
		w.linef("%s %s;", j.typ(f.Type), f.Name)
	}
	if c.Kind == ir.RegularClass && (len(c.Fields) > 0 || c.Super != nil) {
		params := make([]string, len(c.Fields))
		for i, f := range c.Fields {
			params[i] = j.typ(f.Type) + " " + f.Name
		}
		w.linef("%s(%s) {", c.Name, strings.Join(params, ", "))
		w.indent++
		if c.Super != nil && len(c.Super.Args) > 0 {
			w.lineStart()
			w.ws("super")
			w.exprList(c.Super.Args, j)
			w.ws(";")
			w.lineEnd()
		}
		for _, f := range c.Fields {
			w.linef("this.%s = %s;", f.Name, f.Name)
		}
		w.indent--
		w.line("}")
	}
	for _, m := range c.Methods {
		j.method(w, m, false)
	}
	w.indent--
	w.line("}")
}

func (j *Java) method(w *writer, f *ir.FuncDecl, static bool) {
	ret := "var"
	if f.Ret != nil {
		ret = j.typ(f.Ret)
	} else if t := j.exprTypes[f.Body]; t != nil {
		// Java cannot omit return types; recover the inferred one.
		ret = j.typ(t)
	} else {
		ret = "Object"
	}
	head := ""
	if static {
		head = "static "
	}
	if tp := j.typeParams(f.TypeParams); tp != "" {
		head += tp + " "
	}
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = j.typ(p.Type) + " " + p.Name
	}
	head += ret + " " + f.Name + "(" + strings.Join(params, ", ") + ")"
	if f.Body == nil {
		w.line(head + ";")
		return
	}
	w.line(head + " {")
	w.indent++
	j.statementBody(w, f.Body, ret == "void")
	w.indent--
	w.line("}")
}

// statementBody lowers an expression-bodied function into Java statements.
func (j *Java) statementBody(w *writer, body ir.Expr, void bool) {
	if b, ok := body.(*ir.Block); ok {
		for _, s := range b.Stmts {
			j.statement(w, s)
		}
		if b.Value != nil {
			j.returnOrDiscard(w, b.Value, void)
		}
		return
	}
	j.returnOrDiscard(w, body, void)
}

func (j *Java) returnOrDiscard(w *writer, e ir.Expr, void bool) {
	if void {
		if c, ok := e.(*ir.Const); ok {
			if s, isSimple := c.Type.(*types.Simple); isSimple && s.TypeName == "Unit" {
				return // discard the unit constant
			}
		}
		switch e.(type) {
		case *ir.Call, *ir.New, *ir.Assign:
			w.lineStart()
			w.expr(e, j)
			w.ws(";")
			w.lineEnd()
		default:
			j.tmpN++
			w.lineStart()
			w.buf = fmt.Appendf(w.buf, "var tmp%d = ", j.tmpN)
			w.expr(e, j)
			w.ws(";")
			w.lineEnd()
		}
		return
	}
	w.lineStart()
	w.ws("return ")
	w.expr(e, j)
	w.ws(";")
	w.lineEnd()
}

func (j *Java) statement(w *writer, s ir.Node) {
	switch st := s.(type) {
	case *ir.VarDecl:
		w.lineStart()
		if st.DeclType != nil {
			w.ws(j.typ(st.DeclType))
		} else {
			w.ws("var")
		}
		w.ws(" ")
		w.ws(st.Name)
		w.ws(" = ")
		w.expr(st.Init, j)
		w.ws(";")
		w.lineEnd()
	case *ir.Assign:
		w.lineStart()
		w.expr(st, j)
		w.ws(";")
		w.lineEnd()
	case ir.Expr:
		switch st.(type) {
		case *ir.Call, *ir.New:
			w.lineStart()
			w.expr(st, j)
			w.ws(";")
			w.lineEnd()
		default:
			j.tmpN++
			w.lineStart()
			w.buf = fmt.Appendf(w.buf, "var tmp%d = ", j.tmpN)
			w.expr(st, j)
			w.ws(";")
			w.lineEnd()
		}
	}
}

// ----- expression rendering -----

func (j *Java) renderNew(w *writer, n *ir.New) {
	w.ws("new ")
	w.ws(n.Class.Name())
	if _, param := n.Class.(*types.Constructor); param {
		if n.TypeArgs == nil {
			w.ws("<>") // diamond
		} else {
			w.ws("<")
			for i, a := range n.TypeArgs {
				if i > 0 {
					w.ws(", ")
				}
				w.ws(j.typ(a))
			}
			w.ws(">")
		}
	}
	w.exprList(n.Args, j)
}

func (j *Java) renderCall(w *writer, c *ir.Call) {
	targs := ""
	if len(c.TypeArgs) > 0 {
		parts := make([]string, len(c.TypeArgs))
		for i, a := range c.TypeArgs {
			parts[i] = j.typ(a)
		}
		targs = "<" + strings.Join(parts, ", ") + ">"
	}
	switch {
	case c.Recv != nil:
		w.expr(c.Recv, j)
		w.ws(".")
		w.ws(targs)
		w.ws(c.Name)
	case !j.callable[c.Name]:
		// Invocation of a function-typed variable.
		w.ws(c.Name)
		if len(c.Args) == 0 {
			w.ws(".get()")
			return
		}
		w.ws(".apply")
	case targs != "":
		// Unqualified generic calls need explicit qualification in Java.
		w.ws("Globals.")
		w.ws(targs)
		w.ws(c.Name)
	default:
		w.ws(c.Name)
	}
	w.exprList(c.Args, j)
}

func (j *Java) renderLambda(w *writer, l *ir.Lambda) {
	w.ws("(")
	for i, p := range l.Params {
		if i > 0 {
			w.ws(", ")
		}
		if p.Type != nil {
			w.ws(j.typ(p.Type))
			w.ws(" ")
		}
		w.ws(p.Name)
	}
	w.ws(") -> ")
	w.expr(l.Body, j)
}

// renderBlock lowers an expression-position block into an
// immediately-invoked Supplier lambda, typed by the checker's recorded
// type for the block.
func (j *Java) renderBlock(w *writer, b *ir.Block) {
	blockType := "Object"
	if t := j.exprTypes[b]; t != nil {
		blockType = j.typ(t)
	}
	w.buf = fmt.Appendf(w.buf, "((java.util.function.Supplier<%s>) () -> {", blockType)
	w.lineEnd()
	w.indent++
	for _, s := range b.Stmts {
		j.statement(w, s)
	}
	if b.Value != nil {
		w.lineStart()
		w.ws("return ")
		w.expr(b.Value, j)
		w.ws(";")
		w.lineEnd()
	} else {
		w.line("return null;")
	}
	w.indent--
	w.writeIndent()
	w.ws("}).get()")
}

func (j *Java) renderIf(w *writer, e *ir.If) {
	w.ws("(")
	w.expr(e.Cond, j)
	w.ws(" ? ")
	w.expr(e.Then, j)
	w.ws(" : ")
	w.expr(e.Else, j)
	w.ws(")")
}

func (j *Java) renderCast(w *writer, c *ir.Cast) {
	w.ws("((")
	w.ws(j.typ(c.Target))
	w.ws(") ")
	w.expr(c.Expr, j)
	w.ws(")")
}

func (j *Java) renderIs(w *writer, c *ir.Is) {
	// instanceof requires a reifiable type: use the raw class name.
	w.ws("(")
	w.expr(c.Expr, j)
	w.ws(" instanceof ")
	w.ws(c.Target.Name())
	w.ws(")")
}

func (j *Java) renderMethodRef(w *writer, m *ir.MethodRef) {
	w.expr(m.Recv, j)
	w.ws("::")
	w.ws(m.Method)
}
