package translate

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/types"
)

// Kotlin renders IR programs as Kotlin source. Kotlin is the IR's closest
// relative: primary constructors, val/var with inference, expression-body
// functions, declaration-site variance, and trailing-lambda syntax all map
// one to one.
type Kotlin struct{}

// NewKotlin returns the Kotlin translator.
func NewKotlin() *Kotlin { return &Kotlin{} }

func (*Kotlin) Name() string    { return "kotlin" }
func (*Kotlin) FileExt() string { return ".kt" }

// Translate renders p as a Kotlin file.
func (k *Kotlin) Translate(p *ir.Program) string {
	w := newWriter(k.typ, k.constant)
	if p.Package != "" {
		w.linef("package %s", p.Package)
		w.blank()
	}
	for i, d := range p.Decls {
		if i > 0 {
			w.blank()
		}
		switch t := d.(type) {
		case *ir.ClassDecl:
			k.class(w, t)
		case *ir.FuncDecl:
			k.fun(w, t, false)
		case *ir.VarDecl:
			k.varDecl(w, t)
		}
	}
	return w.finish()
}

func (k *Kotlin) typ(t types.Type) string {
	switch tt := t.(type) {
	case types.Top:
		return "Any?"
	case types.Bottom:
		return "Nothing?"
	case *types.Simple:
		return tt.TypeName
	case *types.Parameter:
		return tt.ParamName
	case *types.Constructor:
		return tt.TypeName
	case *types.App:
		parts := make([]string, len(tt.Args))
		for i, a := range tt.Args {
			parts[i] = k.typ(a)
		}
		return tt.Ctor.TypeName + "<" + strings.Join(parts, ", ") + ">"
	case *types.Projection:
		if tt.Var == types.Covariant {
			return "out " + k.typ(tt.Bound)
		}
		return "in " + k.typ(tt.Bound)
	case *types.Func:
		parts := make([]string, len(tt.Params))
		for i, a := range tt.Params {
			parts[i] = k.typ(a)
		}
		return "(" + strings.Join(parts, ", ") + ") -> " + k.typ(tt.Ret)
	case *types.Intersection:
		// Kotlin has no denotable intersections; approximate by the
		// first member (compilers only form them internally).
		if len(tt.Members) > 0 {
			return k.typ(tt.Members[0])
		}
		return "Any?"
	}
	return "Any?"
}

func (k *Kotlin) constant(t types.Type) string {
	if s, ok := t.(*types.Simple); ok && s.Builtin {
		switch s.TypeName {
		case "Byte":
			return "1.toByte()"
		case "Short":
			return "1.toShort()"
		case "Int":
			return "1"
		case "Long":
			return "1L"
		case "Float":
			return "1.0f"
		case "Double":
			return "1.0"
		case "Boolean":
			return "true"
		case "Char":
			return "'c'"
		case "String":
			return "\"s\""
		case "Unit":
			return "Unit"
		case "Number":
			return "1 as Number"
		}
	}
	if _, ok := t.(types.Bottom); ok {
		return "null"
	}
	// val(t) for reference types: a cast null expression (Section 3.2).
	return "(null as " + k.typ(t) + ")"
}

func (k *Kotlin) typeParams(ps []*types.Parameter) string {
	if len(ps) == 0 {
		return ""
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		s := p.ParamName
		if p.Var == types.Covariant {
			s = "out " + s
		} else if p.Var == types.Contravariant {
			s = "in " + s
		}
		if p.Bound != nil {
			s += " : " + k.typ(p.Bound)
		}
		parts[i] = s
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func (k *Kotlin) class(w *writer, c *ir.ClassDecl) {
	head := ""
	switch c.Kind {
	case ir.InterfaceClass:
		head = "interface "
	case ir.AbstractClass:
		head = "abstract class "
	default:
		if c.Open {
			head = "open class "
		} else {
			head = "class "
		}
	}
	w.lineStart()
	w.ws(head)
	w.ws(c.Name)
	w.ws(k.typeParams(c.TypeParams))
	if len(c.Fields) > 0 && c.Kind == ir.RegularClass {
		w.ws("(")
		for i, f := range c.Fields {
			if i > 0 {
				w.ws(", ")
			}
			kw := "val"
			if f.Mutable {
				kw = "var"
			}
			w.buf = fmt.Appendf(w.buf, "%s %s: %s", kw, f.Name, k.typ(f.Type))
		}
		w.ws(")")
	}
	if c.Super != nil {
		w.ws(" : ")
		w.ws(k.typ(c.Super.Type))
		if c.Kind == ir.RegularClass {
			w.exprList(c.Super.Args, k)
		}
	}
	if len(c.Methods) == 0 {
		w.lineEnd()
		return
	}
	w.ws(" {")
	w.lineEnd()
	w.indent++
	for i, m := range c.Methods {
		if i > 0 {
			w.blank()
		}
		k.fun(w, m, c.Kind != ir.RegularClass)
	}
	w.indent--
	w.line("}")
}

func (k *Kotlin) fun(w *writer, f *ir.FuncDecl, inOpenKind bool) {
	head := "fun "
	if f.Override {
		head = "override fun "
	} else if inOpenKind && f.Body != nil {
		head = "fun "
	}
	w.lineStart()
	w.ws(head)
	if tp := k.typeParams(f.TypeParams); tp != "" {
		w.ws(tp)
		w.ws(" ")
	}
	w.ws(f.Name)
	w.ws("(")
	for i, p := range f.Params {
		if i > 0 {
			w.ws(", ")
		}
		w.ws(p.Name)
		w.ws(": ")
		w.ws(k.typ(p.Type))
	}
	w.ws(")")
	if f.Ret != nil {
		w.ws(": ")
		w.ws(k.typ(f.Ret))
	}
	if f.Body == nil {
		w.lineEnd()
		return
	}
	w.ws(" = ")
	w.expr(f.Body, k)
	w.lineEnd()
}

func (k *Kotlin) varDecl(w *writer, v *ir.VarDecl) {
	kw := "val"
	if v.Mutable {
		kw = "var"
	}
	w.lineStart()
	w.ws(kw)
	w.ws(" ")
	w.ws(v.Name)
	if v.DeclType != nil {
		w.ws(": ")
		w.ws(k.typ(v.DeclType))
	}
	if v.Init != nil {
		w.ws(" = ")
		w.expr(v.Init, k)
	}
	w.lineEnd()
}

// ----- expression rendering (language interface) -----

func (k *Kotlin) renderNew(w *writer, n *ir.New) {
	w.ws(n.Class.Name())
	if _, param := n.Class.(*types.Constructor); param && n.TypeArgs != nil {
		w.ws("<")
		for i, a := range n.TypeArgs {
			if i > 0 {
				w.ws(", ")
			}
			w.ws(k.typ(a))
		}
		w.ws(">")
	}
	w.exprList(n.Args, k)
}

func (k *Kotlin) renderCall(w *writer, c *ir.Call) {
	if c.Recv != nil {
		w.expr(c.Recv, k)
		w.ws(".")
	}
	w.ws(c.Name)
	if len(c.TypeArgs) > 0 {
		w.ws("<")
		for i, a := range c.TypeArgs {
			if i > 0 {
				w.ws(", ")
			}
			w.ws(k.typ(a))
		}
		w.ws(">")
	}
	w.exprList(c.Args, k)
}

func (k *Kotlin) renderLambda(w *writer, l *ir.Lambda) {
	w.ws("{ ")
	if len(l.Params) > 0 {
		for i, p := range l.Params {
			if i > 0 {
				w.ws(", ")
			}
			w.ws(p.Name)
			if p.Type != nil {
				w.ws(": ")
				w.ws(k.typ(p.Type))
			}
		}
		w.ws(" -> ")
	}
	w.expr(l.Body, k)
	w.ws(" }")
}

func (k *Kotlin) renderBlock(w *writer, b *ir.Block) {
	w.ws("run {")
	w.lineEnd()
	w.indent++
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *ir.VarDecl:
			k.varDecl(w, st)
		case ir.Expr:
			w.lineStart()
			w.expr(st, k)
			w.lineEnd()
		}
	}
	if b.Value != nil {
		w.lineStart()
		w.expr(b.Value, k)
		w.lineEnd()
	}
	w.indent--
	w.writeIndent()
	w.ws("}")
}

func (k *Kotlin) renderIf(w *writer, e *ir.If) {
	w.ws("if (")
	w.expr(e.Cond, k)
	w.ws(") ")
	w.expr(e.Then, k)
	w.ws(" else ")
	w.expr(e.Else, k)
}

func (k *Kotlin) renderCast(w *writer, c *ir.Cast) {
	w.ws("(")
	w.expr(c.Expr, k)
	w.ws(" as ")
	w.ws(k.typ(c.Target))
	w.ws(")")
}

func (k *Kotlin) renderIs(w *writer, c *ir.Is) {
	w.ws("(")
	w.expr(c.Expr, k)
	w.ws(" is ")
	w.ws(k.typ(c.Target))
	w.ws(")")
}

func (k *Kotlin) renderMethodRef(w *writer, m *ir.MethodRef) {
	w.expr(m.Recv, k)
	w.ws("::")
	w.ws(m.Method)
}
