package translate

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/types"
)

// Kotlin renders IR programs as Kotlin source. Kotlin is the IR's closest
// relative: primary constructors, val/var with inference, expression-body
// functions, declaration-site variance, and trailing-lambda syntax all map
// one to one.
type Kotlin struct{}

// NewKotlin returns the Kotlin translator.
func NewKotlin() *Kotlin { return &Kotlin{} }

func (*Kotlin) Name() string    { return "kotlin" }
func (*Kotlin) FileExt() string { return ".kt" }

// Translate renders p as a Kotlin file.
func (k *Kotlin) Translate(p *ir.Program) string {
	w := &writer{typeFn: k.typ, constFn: k.constant}
	if p.Package != "" {
		w.linef("package %s", p.Package)
		w.blank()
	}
	for i, d := range p.Decls {
		if i > 0 {
			w.blank()
		}
		switch t := d.(type) {
		case *ir.ClassDecl:
			k.class(w, t)
		case *ir.FuncDecl:
			k.fun(w, t, false)
		case *ir.VarDecl:
			k.varDecl(w, t)
		}
	}
	return w.String()
}

func (k *Kotlin) typ(t types.Type) string {
	switch tt := t.(type) {
	case types.Top:
		return "Any?"
	case types.Bottom:
		return "Nothing?"
	case *types.Simple:
		return tt.TypeName
	case *types.Parameter:
		return tt.ParamName
	case *types.Constructor:
		return tt.TypeName
	case *types.App:
		parts := make([]string, len(tt.Args))
		for i, a := range tt.Args {
			parts[i] = k.typ(a)
		}
		return tt.Ctor.TypeName + "<" + strings.Join(parts, ", ") + ">"
	case *types.Projection:
		if tt.Var == types.Covariant {
			return "out " + k.typ(tt.Bound)
		}
		return "in " + k.typ(tt.Bound)
	case *types.Func:
		parts := make([]string, len(tt.Params))
		for i, a := range tt.Params {
			parts[i] = k.typ(a)
		}
		return "(" + strings.Join(parts, ", ") + ") -> " + k.typ(tt.Ret)
	case *types.Intersection:
		// Kotlin has no denotable intersections; approximate by the
		// first member (compilers only form them internally).
		if len(tt.Members) > 0 {
			return k.typ(tt.Members[0])
		}
		return "Any?"
	}
	return "Any?"
}

func (k *Kotlin) constant(t types.Type) string {
	if s, ok := t.(*types.Simple); ok && s.Builtin {
		switch s.TypeName {
		case "Byte":
			return "1.toByte()"
		case "Short":
			return "1.toShort()"
		case "Int":
			return "1"
		case "Long":
			return "1L"
		case "Float":
			return "1.0f"
		case "Double":
			return "1.0"
		case "Boolean":
			return "true"
		case "Char":
			return "'c'"
		case "String":
			return "\"s\""
		case "Unit":
			return "Unit"
		case "Number":
			return "1 as Number"
		}
	}
	if _, ok := t.(types.Bottom); ok {
		return "null"
	}
	// val(t) for reference types: a cast null expression (Section 3.2).
	return "(null as " + k.typ(t) + ")"
}

func (k *Kotlin) typeParams(ps []*types.Parameter) string {
	if len(ps) == 0 {
		return ""
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		s := p.ParamName
		if p.Var == types.Covariant {
			s = "out " + s
		} else if p.Var == types.Contravariant {
			s = "in " + s
		}
		if p.Bound != nil {
			s += " : " + k.typ(p.Bound)
		}
		parts[i] = s
	}
	return "<" + strings.Join(parts, ", ") + ">"
}

func (k *Kotlin) class(w *writer, c *ir.ClassDecl) {
	head := ""
	switch c.Kind {
	case ir.InterfaceClass:
		head = "interface "
	case ir.AbstractClass:
		head = "abstract class "
	default:
		if c.Open {
			head = "open class "
		} else {
			head = "class "
		}
	}
	line := head + c.Name + k.typeParams(c.TypeParams)
	if len(c.Fields) > 0 && c.Kind == ir.RegularClass {
		parts := make([]string, len(c.Fields))
		for i, f := range c.Fields {
			kw := "val"
			if f.Mutable {
				kw = "var"
			}
			parts[i] = fmt.Sprintf("%s %s: %s", kw, f.Name, k.typ(f.Type))
		}
		line += "(" + strings.Join(parts, ", ") + ")"
	}
	if c.Super != nil {
		line += " : " + k.typ(c.Super.Type)
		if c.Kind == ir.RegularClass {
			args := make([]string, len(c.Super.Args))
			for i, a := range c.Super.Args {
				args[i] = w.expr(a, k)
			}
			line += "(" + strings.Join(args, ", ") + ")"
		}
	}
	if len(c.Methods) == 0 {
		w.line(line)
		return
	}
	w.line(line + " {")
	w.indent++
	for i, m := range c.Methods {
		if i > 0 {
			w.blank()
		}
		k.fun(w, m, c.Kind != ir.RegularClass)
	}
	w.indent--
	w.line("}")
}

func (k *Kotlin) fun(w *writer, f *ir.FuncDecl, inOpenKind bool) {
	head := "fun "
	if f.Override {
		head = "override fun "
	} else if inOpenKind && f.Body != nil {
		head = "fun "
	}
	if tp := k.typeParams(f.TypeParams); tp != "" {
		head += tp + " "
	}
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Name + ": " + k.typ(p.Type)
	}
	head += f.Name + "(" + strings.Join(params, ", ") + ")"
	if f.Ret != nil {
		head += ": " + k.typ(f.Ret)
	}
	if f.Body == nil {
		w.line(head)
		return
	}
	w.line(head + " = " + w.expr(f.Body, k))
}

func (k *Kotlin) varDecl(w *writer, v *ir.VarDecl) {
	kw := "val"
	if v.Mutable {
		kw = "var"
	}
	line := kw + " " + v.Name
	if v.DeclType != nil {
		line += ": " + k.typ(v.DeclType)
	}
	if v.Init != nil {
		line += " = " + w.expr(v.Init, k)
	}
	w.line(line)
}

// ----- expression rendering (languageExpr interface) -----

func (k *Kotlin) renderNew(w *writer, n *ir.New) string {
	name := n.Class.Name()
	if _, param := n.Class.(*types.Constructor); param && n.TypeArgs != nil {
		parts := make([]string, len(n.TypeArgs))
		for i, a := range n.TypeArgs {
			parts[i] = k.typ(a)
		}
		name += "<" + strings.Join(parts, ", ") + ">"
	}
	args := make([]string, len(n.Args))
	for i, a := range n.Args {
		args[i] = w.expr(a, k)
	}
	return name + "(" + strings.Join(args, ", ") + ")"
}

func (k *Kotlin) renderCall(w *writer, c *ir.Call) string {
	s := ""
	if c.Recv != nil {
		s = w.expr(c.Recv, k) + "."
	}
	s += c.Name
	if len(c.TypeArgs) > 0 {
		parts := make([]string, len(c.TypeArgs))
		for i, a := range c.TypeArgs {
			parts[i] = k.typ(a)
		}
		s += "<" + strings.Join(parts, ", ") + ">"
	}
	args := make([]string, len(c.Args))
	for i, a := range c.Args {
		args[i] = w.expr(a, k)
	}
	return s + "(" + strings.Join(args, ", ") + ")"
}

func (k *Kotlin) renderLambda(w *writer, l *ir.Lambda) string {
	params := make([]string, len(l.Params))
	for i, p := range l.Params {
		params[i] = p.Name
		if p.Type != nil {
			params[i] += ": " + k.typ(p.Type)
		}
	}
	body := w.expr(l.Body, k)
	if len(params) == 0 {
		return "{ " + body + " }"
	}
	return "{ " + strings.Join(params, ", ") + " -> " + body + " }"
}

func (k *Kotlin) renderBlock(w *writer, b *ir.Block) string {
	var sb strings.Builder
	sb.WriteString("run {\n")
	w.indent++
	for _, s := range b.Stmts {
		switch st := s.(type) {
		case *ir.VarDecl:
			inner := &writer{typeFn: k.typ, constFn: k.constant, indent: w.indent}
			k.varDecl(inner, st)
			sb.WriteString(inner.String())
		case ir.Expr:
			sb.WriteString(strings.Repeat("    ", w.indent) + w.expr(st, k) + "\n")
		}
	}
	if b.Value != nil {
		sb.WriteString(strings.Repeat("    ", w.indent) + w.expr(b.Value, k) + "\n")
	}
	w.indent--
	sb.WriteString(strings.Repeat("    ", w.indent) + "}")
	return sb.String()
}

func (k *Kotlin) renderIf(w *writer, e *ir.If) string {
	return "if (" + w.expr(e.Cond, k) + ") " + w.expr(e.Then, k) + " else " + w.expr(e.Else, k)
}

func (k *Kotlin) renderCast(w *writer, c *ir.Cast) string {
	return "(" + w.expr(c.Expr, k) + " as " + k.typ(c.Target) + ")"
}

func (k *Kotlin) renderIs(w *writer, c *ir.Is) string {
	return "(" + w.expr(c.Expr, k) + " is " + k.typ(c.Target) + ")"
}

func (k *Kotlin) renderMethodRef(w *writer, m *ir.MethodRef) string {
	return w.expr(m.Recv, k) + "::" + m.Method
}
