package translate

import (
	"strings"
	"testing"

	"repro/internal/generator"
	"repro/internal/ir"
	"repro/internal/mutation"
	"repro/internal/types"
)

// figure6 builds the paper's Figure 6 program.
func figure6() *ir.Program {
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)
	bT := types.NewParameter("B", "T")
	classB := &ir.ClassDecl{
		Name:       "B",
		TypeParams: []*types.Parameter{bT},
		Super:      &ir.SuperRef{Type: ctorA.Apply(bT)},
		Fields:     []*ir.FieldDecl{{Name: "f", Type: ctorA.Apply(bT)}},
	}
	ctorB := classB.Type().(*types.Constructor)
	m := &ir.FuncDecl{
		Name: "m",
		Ret:  ctorA.Apply(b.String),
		Body: &ir.New{
			Class:    ctorB,
			TypeArgs: []types.Type{b.String},
			Args:     []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.String}}},
		},
	}
	return &ir.Program{Package: "fig6", Decls: []ir.Decl{classA, classB, m}}
}

func TestRegistry(t *testing.T) {
	if len(All()) != 3 {
		t.Fatalf("expected 3 translators, got %d", len(All()))
	}
	for _, name := range []string{"java", "kotlin", "groovy"} {
		tr := ByName(name)
		if tr == nil {
			t.Fatalf("missing translator %s", name)
		}
		if tr.Name() != name {
			t.Errorf("name mismatch: %s", tr.Name())
		}
		if !strings.HasPrefix(tr.FileExt(), ".") {
			t.Errorf("bad extension %q", tr.FileExt())
		}
	}
	if ByName("scala") != nil {
		t.Error("unknown language must return nil")
	}
	if got := Names(); len(got) != 3 || got[0] != "groovy" || got[1] != "java" || got[2] != "kotlin" {
		t.Errorf("Names() = %v", got)
	}
}

func TestKotlinFigure6(t *testing.T) {
	src := NewKotlin().Translate(figure6())
	for _, want := range []string{
		"package fig6",
		"open class A<T>",
		"class B<T>(val f: A<T>) : A<T>()",
		"fun m(): A<String> = B<String>(A<String>())",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("kotlin output missing %q:\n%s", want, src)
		}
	}
}

func TestJavaFigure6(t *testing.T) {
	src := NewJava().Translate(figure6())
	for _, want := range []string{
		"package fig6;",
		"class A<T> {",
		"class B<T> extends A<T> {",
		"A<T> f;",
		"static A<String> m() {",
		"return new B<String>(new A<String>());",
		"class Globals {",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("java output missing %q:\n%s", want, src)
		}
	}
}

func TestGroovyFigure6(t *testing.T) {
	src := NewGroovy().Translate(figure6())
	for _, want := range []string{
		"package fig6",
		"@groovy.transform.CompileStatic",
		"class B<T> extends A<T> {",
		"static A<String> m() {",
		"return new B<String>(new A<String>())",
	} {
		if !strings.Contains(src, want) {
			t.Errorf("groovy output missing %q:\n%s", want, src)
		}
	}
}

func TestBuiltinTypeMapping(t *testing.T) {
	b := types.NewBuiltins()
	cases := []struct {
		typ    types.Type
		kotlin string
		java   string
		groovy string
	}{
		{b.Int, "Int", "Integer", "Integer"},
		{b.Char, "Char", "Character", "Character"},
		{b.String, "String", "String", "String"},
		{types.Top{}, "Any?", "Object", "Object"},
		{b.Unit, "Unit", "void", "void"},
	}
	k, j, g := NewKotlin(), NewJava(), NewGroovy()
	for _, c := range cases {
		if got := k.typ(c.typ); got != c.kotlin {
			t.Errorf("kotlin %s = %q, want %q", c.typ, got, c.kotlin)
		}
		if got := j.typ(c.typ); got != c.java {
			t.Errorf("java %s = %q, want %q", c.typ, got, c.java)
		}
		if got := g.typ(c.typ); got != c.groovy {
			t.Errorf("groovy %s = %q, want %q", c.typ, got, c.groovy)
		}
	}
}

func TestProjectionMapping(t *testing.T) {
	b := types.NewBuiltins()
	p := &types.Projection{Var: types.Covariant, Bound: b.Number}
	if got := NewKotlin().typ(p); got != "out Number" {
		t.Errorf("kotlin projection = %q", got)
	}
	if got := NewJava().typ(p); got != "? extends Number" {
		t.Errorf("java projection = %q", got)
	}
	in := &types.Projection{Var: types.Contravariant, Bound: b.Number}
	if got := NewJava().typ(in); got != "? super Number" {
		t.Errorf("java in-projection = %q", got)
	}
	if got := NewKotlin().typ(in); got != "in Number" {
		t.Errorf("kotlin in-projection = %q", got)
	}
}

func TestFunctionTypeMapping(t *testing.T) {
	b := types.NewBuiltins()
	f0 := &types.Func{Ret: b.String}
	f1 := &types.Func{Params: []types.Type{b.Int}, Ret: b.String}
	f2 := &types.Func{Params: []types.Type{b.Int, b.Long}, Ret: b.String}
	j := NewJava()
	if got := j.typ(f0); got != "java.util.function.Supplier<String>" {
		t.Errorf("java f0 = %q", got)
	}
	if got := j.typ(f1); got != "java.util.function.Function<Integer, String>" {
		t.Errorf("java f1 = %q", got)
	}
	if got := j.typ(f2); !strings.Contains(got, "BiFunction") {
		t.Errorf("java f2 = %q", got)
	}
	if got := NewKotlin().typ(f1); got != "(Int) -> String" {
		t.Errorf("kotlin f1 = %q", got)
	}
	if got := NewGroovy().typ(f1); got != "groovy.lang.Closure<String>" {
		t.Errorf("groovy f1 = %q", got)
	}
}

func TestDiamondRendering(t *testing.T) {
	p := figure6()
	m := p.Functions()[0]
	m.Body.(*ir.New).TypeArgs = nil // erase to diamond
	java := NewJava().Translate(p)
	if !strings.Contains(java, "new B<>(") {
		t.Errorf("java should render the diamond:\n%s", java)
	}
	kotlin := NewKotlin().Translate(p)
	if !strings.Contains(kotlin, "B(A<String>())") {
		t.Errorf("kotlin omits type arguments entirely:\n%s", kotlin)
	}
	groovy := NewGroovy().Translate(p)
	if !strings.Contains(groovy, "new B<>(") {
		t.Errorf("groovy should render the diamond:\n%s", groovy)
	}
}

func balanced(s string, open, close rune) bool {
	depth := 0
	for _, r := range s {
		switch r {
		case open:
			depth++
		case close:
			depth--
			if depth < 0 {
				return false
			}
		}
	}
	return depth == 0
}

// TestGeneratedProgramsTranslate exercises all three translators on many
// generated programs: output must be non-empty, structurally balanced,
// deterministic, and free of "unsupported" placeholders.
func TestGeneratedProgramsTranslate(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		p.Package = "batch"
		for _, tr := range All() {
			src := tr.Translate(p)
			if len(src) < 50 {
				t.Fatalf("seed %d %s: suspiciously short output", seed, tr.Name())
			}
			if strings.Contains(src, "/* unsupported */") {
				t.Errorf("seed %d %s: unsupported construct:\n%s", seed, tr.Name(), src)
			}
			if !balanced(src, '{', '}') {
				t.Errorf("seed %d %s: unbalanced braces", seed, tr.Name())
			}
			if !balanced(src, '(', ')') {
				t.Errorf("seed %d %s: unbalanced parentheses", seed, tr.Name())
			}
			if src != tr.Translate(p) {
				t.Errorf("seed %d %s: non-deterministic output", seed, tr.Name())
			}
		}
	}
}

func TestLambdaRendering(t *testing.T) {
	b := types.NewBuiltins()
	ft := &types.Func{Params: []types.Type{b.Int}, Ret: b.String}
	f := &ir.FuncDecl{
		Name: "mk",
		Ret:  ft,
		Body: &ir.Lambda{
			Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}},
			Body:   &ir.Const{Type: b.String},
		},
	}
	p := &ir.Program{Decls: []ir.Decl{f}}
	kotlin := NewKotlin().Translate(p)
	if !strings.Contains(kotlin, "{ x: Int -> \"s\" }") {
		t.Errorf("kotlin lambda:\n%s", kotlin)
	}
	java := NewJava().Translate(p)
	if !strings.Contains(java, "(Integer x) -> \"s\"") {
		t.Errorf("java lambda:\n%s", java)
	}
	groovy := NewGroovy().Translate(p)
	if !strings.Contains(groovy, "{ Integer x -> \"s\" }") {
		t.Errorf("groovy lambda:\n%s", groovy)
	}
}

func TestMethodRefRendering(t *testing.T) {
	b := types.NewBuiltins()
	cls := &ir.ClassDecl{Name: "S", Methods: []*ir.FuncDecl{{
		Name: "len", Params: []*ir.ParamDecl{{Name: "s", Type: b.String}},
		Ret: b.Int, Body: &ir.Const{Type: b.Int},
	}}}
	f := &ir.FuncDecl{
		Name: "mk",
		Ret:  &types.Func{Params: []types.Type{b.String}, Ret: b.Int},
		Body: &ir.MethodRef{Recv: &ir.New{Class: cls.Type()}, Method: "len"},
	}
	p := &ir.Program{Decls: []ir.Decl{cls, f}}
	if src := NewKotlin().Translate(p); !strings.Contains(src, "S()::len") {
		t.Errorf("kotlin method ref:\n%s", src)
	}
	if src := NewJava().Translate(p); !strings.Contains(src, "new S()::len") {
		t.Errorf("java method ref:\n%s", src)
	}
	if src := NewGroovy().Translate(p); !strings.Contains(src, "new S().&len") {
		t.Errorf("groovy method ref:\n%s", src)
	}
}

func TestCastAndIsRendering(t *testing.T) {
	b := types.NewBuiltins()
	f := &ir.FuncDecl{
		Name: "f",
		Ret:  b.Boolean,
		Body: &ir.Is{
			Expr:   &ir.Cast{Expr: &ir.Const{Type: b.Int}, Target: types.Top{}},
			Target: b.String,
		},
	}
	p := &ir.Program{Decls: []ir.Decl{f}}
	if src := NewKotlin().Translate(p); !strings.Contains(src, "as Any?") || !strings.Contains(src, "is String") {
		t.Errorf("kotlin cast/is:\n%s", src)
	}
	if src := NewJava().Translate(p); !strings.Contains(src, "(Object) 1") || !strings.Contains(src, "instanceof String") {
		t.Errorf("java cast/is:\n%s", src)
	}
	if src := NewGroovy().Translate(p); !strings.Contains(src, "as Object") || !strings.Contains(src, "instanceof String") {
		t.Errorf("groovy cast/is:\n%s", src)
	}
}

func TestFileName(t *testing.T) {
	p := figure6()
	if got := FileName(NewKotlin(), p); got != "fig6.kt" {
		t.Errorf("FileName = %q", got)
	}
	p.Package = ""
	if got := FileName(NewJava(), p); got != "Main.java" {
		t.Errorf("FileName = %q", got)
	}
}

func TestJavaBlockLowering(t *testing.T) {
	b := types.NewBuiltins()
	// fun f(): Int = { val x: Int = 1; x } — the block must become an
	// immediately-invoked Supplier in expression positions, or plain
	// statements at body level.
	f := &ir.FuncDecl{Name: "f", Ret: b.Int, Body: &ir.Block{
		Stmts: []ir.Node{&ir.VarDecl{Name: "x", DeclType: b.Int, Init: &ir.Const{Type: b.Int}}},
		Value: &ir.VarRef{Name: "x"},
	}}
	p := &ir.Program{Decls: []ir.Decl{f}}
	src := NewJava().Translate(p)
	if !strings.Contains(src, "Integer x = 1;") || !strings.Contains(src, "return x;") {
		t.Errorf("java body-level block should lower to statements:\n%s", src)
	}

	// Nested block in an argument position becomes a Supplier IIFE.
	g := &ir.FuncDecl{Name: "g", Ret: b.Int, Body: &ir.If{
		Cond: &ir.Const{Type: b.Boolean},
		Then: &ir.Block{Value: &ir.Const{Type: b.Int}},
		Else: &ir.Const{Type: b.Int},
	}}
	p2 := &ir.Program{Decls: []ir.Decl{g}}
	src2 := NewJava().Translate(p2)
	if !strings.Contains(src2, "java.util.function.Supplier<Integer>") || !strings.Contains(src2, ".get()") {
		t.Errorf("java nested block should become a Supplier IIFE:\n%s", src2)
	}
}

// TestMutantsTranslate renders TEM/TOM mutants (with diamonds and
// inferred declarations) in all three languages.
func TestMutantsTranslate(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		g := generator.New(generator.DefaultConfig().WithSeed(seed))
		p := g.Generate()
		tem, rep := mutation.TypeErasure(p, g.Builtins())
		if !rep.Changed() {
			continue
		}
		for _, tr := range All() {
			src := tr.Translate(tem)
			if !balanced(src, '{', '}') || !balanced(src, '(', ')') {
				t.Fatalf("seed %d %s: unbalanced mutant translation", seed, tr.Name())
			}
			if strings.Contains(src, "/* unsupported */") {
				t.Errorf("seed %d %s: unsupported construct in mutant", seed, tr.Name())
			}
		}
		// Kotlin renders erased declarations without annotations.
		kt := NewKotlin().Translate(tem)
		if strings.Contains(kt, "<>") {
			t.Errorf("seed %d: kotlin output must not contain Java diamonds:\n", seed)
		}
	}
}

// TestOverloadedMethodsTranslate: REM mutants carry overloads; all
// languages support them syntactically.
func TestOverloadedMethodsTranslate(t *testing.T) {
	b := types.NewBuiltins()
	cls := &ir.ClassDecl{Name: "C", Methods: []*ir.FuncDecl{
		{Name: "m", Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}},
			Ret: b.Int, Body: &ir.Const{Type: b.Int}},
		{Name: "m", Params: []*ir.ParamDecl{{Name: "x", Type: b.Int}, {Name: "y", Type: b.Int}},
			Ret: b.Int, Body: &ir.Const{Type: b.Int}},
	}}
	p := &ir.Program{Decls: []ir.Decl{cls}}
	for _, tr := range All() {
		src := tr.Translate(p)
		if strings.Count(src, "m(") < 2 {
			t.Errorf("%s: both overloads should render:\n%s", tr.Name(), src)
		}
	}
}
