// Package translate converts IR programs into concrete Java, Kotlin, and
// Groovy source files (Section 3.6: "language-aware translators then
// convert a program written in the IR into a corresponding source file").
//
// Each translator maps the IR's neutral builtin names onto the language's
// spelling (Int → int/Integer in Java, Int in Kotlin, Integer in Groovy),
// renders parametric polymorphism in the language's generics syntax
// (bounded parameters, declaration-site variance where supported, use-site
// wildcards), and chooses the idiomatic form for omitted types (Java var
// and diamonds, Kotlin type inference, Groovy def).
//
// Translated programs begin with a package/annotation header so that
// batched compilation does not produce conflicting declarations
// (Section 3.5).
package translate

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Translator renders an IR program as a compilable source file of one
// target language.
type Translator interface {
	// Name is the language name ("java", "kotlin", "groovy").
	Name() string
	// FileExt is the source-file extension including the dot.
	FileExt() string
	// Translate renders the program.
	Translate(p *ir.Program) string
}

// All returns the available translators in a fixed order.
func All() []Translator {
	return []Translator{NewKotlin(), NewJava(), NewGroovy()}
}

// ByName returns the translator for a language, or nil.
func ByName(name string) Translator {
	for _, t := range All() {
		if t.Name() == name {
			return t
		}
	}
	return nil
}

// Names lists the supported language names, sorted.
func Names() []string {
	var out []string
	for _, t := range All() {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

// FileName produces the conventional file name for a translated program.
func FileName(t Translator, p *ir.Program) string {
	base := p.Package
	if base == "" {
		base = "Main"
	}
	return fmt.Sprintf("%s%s", base, t.FileExt())
}
