package translate

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/types"
)

// language is the per-language expression renderer; forms whose syntax
// coincides across the targets (variables, field accesses, binary
// operators, assignments) are rendered by the shared writer.
type language interface {
	renderNew(w *writer, n *ir.New) string
	renderCall(w *writer, c *ir.Call) string
	renderLambda(w *writer, l *ir.Lambda) string
	renderBlock(w *writer, b *ir.Block) string
	renderIf(w *writer, e *ir.If) string
	renderCast(w *writer, c *ir.Cast) string
	renderIs(w *writer, c *ir.Is) string
	renderMethodRef(w *writer, m *ir.MethodRef) string
}

// writer accumulates indented source lines.
type writer struct {
	sb      strings.Builder
	indent  int
	typeFn  func(types.Type) string
	constFn func(types.Type) string
}

func (w *writer) String() string { return w.sb.String() }

func (w *writer) line(s string) {
	w.sb.WriteString(strings.Repeat("    ", w.indent))
	w.sb.WriteString(s)
	w.sb.WriteString("\n")
}

func (w *writer) linef(format string, args ...any) {
	w.line(fmt.Sprintf(format, args...))
}

func (w *writer) blank() { w.sb.WriteString("\n") }

// expr renders an expression, delegating language-specific forms.
func (w *writer) expr(e ir.Expr, lang language) string {
	switch t := e.(type) {
	case *ir.Const:
		return w.constFn(t.Type)
	case *ir.VarRef:
		return t.Name
	case *ir.FieldAccess:
		return w.expr(t.Recv, lang) + "." + t.Field
	case *ir.BinaryOp:
		return "(" + w.expr(t.Left, lang) + " " + t.Op + " " + w.expr(t.Right, lang) + ")"
	case *ir.Assign:
		return w.expr(t.Target, lang) + " = " + w.expr(t.Value, lang)
	case *ir.New:
		return lang.renderNew(w, t)
	case *ir.Call:
		return lang.renderCall(w, t)
	case *ir.Lambda:
		return lang.renderLambda(w, t)
	case *ir.Block:
		return lang.renderBlock(w, t)
	case *ir.If:
		return lang.renderIf(w, t)
	case *ir.Cast:
		return lang.renderCast(w, t)
	case *ir.Is:
		return lang.renderIs(w, t)
	case *ir.MethodRef:
		return lang.renderMethodRef(w, t)
	}
	return "/* unsupported */"
}
