package translate

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ir"
	"repro/internal/types"
)

// language is the per-language expression renderer; forms whose syntax
// coincides across the targets (variables, field accesses, binary
// operators, assignments) are rendered by the shared writer. Renderers
// append directly into the writer's buffer — expressions are never built
// by returning and concatenating strings, which was quadratic in both time
// and allocations for nested expressions.
type language interface {
	renderNew(w *writer, n *ir.New)
	renderCall(w *writer, c *ir.Call)
	renderLambda(w *writer, l *ir.Lambda)
	renderBlock(w *writer, b *ir.Block)
	renderIf(w *writer, e *ir.If)
	renderCast(w *writer, c *ir.Cast)
	renderIs(w *writer, c *ir.Is)
	renderMethodRef(w *writer, m *ir.MethodRef)
}

// writer accumulates rendered source into a single reusable byte buffer.
// Instances are pooled across Translate calls; the only per-translation
// allocation on the writer's account is the final string conversion.
type writer struct {
	buf     []byte
	indent  int
	typeFn  func(types.Type) string
	constFn func(types.Type) string
}

var writerPool = sync.Pool{
	New: func() any {
		return &writer{buf: make([]byte, 0, 8192)}
	},
}

// newWriter returns a pooled writer reset for a fresh translation.
func newWriter(typeFn, constFn func(types.Type) string) *writer {
	w := writerPool.Get().(*writer)
	w.buf = w.buf[:0]
	w.indent = 0
	w.typeFn = typeFn
	w.constFn = constFn
	return w
}

// finish materializes the rendered source and returns the writer to the
// pool. The writer must not be used afterwards.
func (w *writer) finish() string {
	s := string(w.buf)
	w.typeFn = nil
	w.constFn = nil
	writerPool.Put(w)
	return s
}

func (w *writer) String() string { return string(w.buf) }

// ws appends a raw string.
func (w *writer) ws(s string) { w.buf = append(w.buf, s...) }

var indentStrings = [...]string{
	"",
	"    ",
	"        ",
	"            ",
	"                ",
	"                    ",
	"                        ",
}

// writeIndent appends the current indentation without starting a line.
func (w *writer) writeIndent() {
	n := w.indent
	if n < len(indentStrings) {
		w.buf = append(w.buf, indentStrings[n]...)
		return
	}
	w.buf = append(w.buf, strings.Repeat("    ", n)...)
}

// lineStart begins an indented line; the caller appends its pieces and
// closes with lineEnd.
func (w *writer) lineStart() { w.writeIndent() }

// lineEnd terminates the current line.
func (w *writer) lineEnd() { w.buf = append(w.buf, '\n') }

func (w *writer) line(s string) {
	w.writeIndent()
	w.ws(s)
	w.lineEnd()
}

func (w *writer) linef(format string, args ...any) {
	w.writeIndent()
	w.buf = fmt.Appendf(w.buf, format, args...)
	w.lineEnd()
}

func (w *writer) blank() { w.buf = append(w.buf, '\n') }

// expr renders an expression into the buffer, delegating
// language-specific forms.
func (w *writer) expr(e ir.Expr, lang language) {
	switch t := e.(type) {
	case *ir.Const:
		w.ws(w.constFn(t.Type))
	case *ir.VarRef:
		w.ws(t.Name)
	case *ir.FieldAccess:
		w.expr(t.Recv, lang)
		w.buf = append(w.buf, '.')
		w.ws(t.Field)
	case *ir.BinaryOp:
		w.buf = append(w.buf, '(')
		w.expr(t.Left, lang)
		w.buf = append(w.buf, ' ')
		w.ws(t.Op)
		w.buf = append(w.buf, ' ')
		w.expr(t.Right, lang)
		w.buf = append(w.buf, ')')
	case *ir.Assign:
		w.expr(t.Target, lang)
		w.ws(" = ")
		w.expr(t.Value, lang)
	case *ir.New:
		lang.renderNew(w, t)
	case *ir.Call:
		lang.renderCall(w, t)
	case *ir.Lambda:
		lang.renderLambda(w, t)
	case *ir.Block:
		lang.renderBlock(w, t)
	case *ir.If:
		lang.renderIf(w, t)
	case *ir.Cast:
		lang.renderCast(w, t)
	case *ir.Is:
		lang.renderIs(w, t)
	case *ir.MethodRef:
		lang.renderMethodRef(w, t)
	default:
		w.ws("/* unsupported */")
	}
}

// exprList renders a comma-separated, parenthesized expression list —
// the shape shared by constructor calls, method calls, and super calls.
func (w *writer) exprList(es []ir.Expr, lang language) {
	w.buf = append(w.buf, '(')
	for i, e := range es {
		if i > 0 {
			w.ws(", ")
		}
		w.expr(e, lang)
	}
	w.buf = append(w.buf, ')')
}
