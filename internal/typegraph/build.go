package typegraph

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/governor"
	"repro/internal/ir"
	"repro/internal/types"
)

// Analysis holds everything needed to build type graphs for a program: the
// declaration index and the per-expression static types computed by the
// reference checker ("getType(e)" in Figure 5's rules).
type Analysis struct {
	Env       *checker.Env
	ExprTypes map[ir.Expr]types.Type
	Result    *checker.Result
}

// Analyze type-checks p and prepares a type-graph analysis. The program is
// expected to be well-typed (graphs of ill-typed programs are built on a
// best-effort basis).
func Analyze(p *ir.Program, b *types.Builtins) *Analysis {
	res := checker.Check(p, b, checker.Options{RecordTypes: true})
	return &Analysis{Env: checker.NewEnv(p, b), ExprTypes: res.ExprTypes, Result: res}
}

// BuildGraph runs the intra-procedural, flow-sensitive analysis A(G, n) of
// Section 3.3.2 over one method, returning its type graph. owner is the
// enclosing class, or nil for top-level functions.
func (a *Analysis) BuildGraph(m *ir.FuncDecl, owner *ir.ClassDecl) *Graph {
	b := &builder{
		a:      a,
		g:      NewGraph(),
		varOcc: map[string]occRef{},
	}
	for _, p := range m.Params {
		if p.Type == nil {
			continue
		}
		// Parameters contribute type information but are not erasable
		// (the IR cannot omit parameter types on named functions).
		ref := b.registerType(p.Type, DeclEdge, nil)
		node := b.g.AddDeclNode("param:" + p.Name)
		b.g.AddEdge(node.ID, ref.node, DeclEdge)
		ref.node = node.ID
		b.varOcc[p.Name] = ref
	}
	if owner != nil {
		for _, f := range owner.Fields {
			ref := b.registerType(f.Type, DeclEdge, nil)
			node := b.g.AddDeclNode("field:" + f.Name)
			b.g.AddEdge(node.ID, ref.node, DeclEdge)
			ref.node = node.ID
			b.varOcc[f.Name] = ref
		}
	}
	if m.Body == nil {
		return b.g
	}
	bodyRef := b.walkExpr(m.Body)
	// The return value is a virtual variable named ret ([var .*] rules).
	ret := b.g.AddDeclNode(m.Name + ".ret")
	b.g.AddEdge(ret.ID, bodyRef.node, InfEdge)
	if m.Ret != nil {
		declRef := b.registerType(m.Ret, DeclEdge, nil)
		b.g.AddEdge(ret.ID, declRef.node, DeclEdge)
		b.linkTarget(declRef, bodyRef)
		if isUnit(m.Ret) {
			// Erasing a Unit return annotation is always type-neutral
			// but also uninteresting; skip the candidate.
			return b.g
		}
		b.g.Candidates = append(b.g.Candidates, &Candidate{
			Kind:         ReturnType,
			NodeID:       ret.ID,
			ParamNodeIDs: declRef.paramIDs(),
			EraseSet:     append([]string{ret.ID}, declRef.paramIDs()...),
			VanishNodes:  declRef.paramIDs(),
			Fun:          m,
		})
	}
	return b.g
}

// BuildAll builds the graph of every method in the program, keyed by
// "func" or "Class.method" name.
func (a *Analysis) BuildAll() map[string]*Graph {
	out := map[string]*Graph{}
	for _, d := range a.Env.Program.Decls {
		switch t := d.(type) {
		case *ir.FuncDecl:
			out[t.Name] = a.BuildGraph(t, nil)
		case *ir.ClassDecl:
			for _, m := range t.Methods {
				out[t.Name+"."+m.Name] = a.BuildGraph(m, t)
			}
		}
	}
	return out
}

func isUnit(t types.Type) bool {
	s, ok := t.(*types.Simple)
	return ok && s.Builtin && s.TypeName == "Unit"
}

// occRef describes where an expression's or annotation's type information
// lives in the graph: its principal node, its type-application structure,
// and the parameter-occurrence nodes per argument position.
type occRef struct {
	node string
	// app is the occurrence's application type (nil for ground types).
	app *types.App
	// params maps the app's constructor-parameter IDs to this
	// occurrence's parameter nodes.
	params map[string]string
	// nested holds occurrence refs of application-typed argument
	// positions, keyed by position index.
	nested map[int]occRef
	// receptive marks expressions whose typing accepts a target type
	// (constructor and method calls, possibly through blocks). Target
	// information only flows backward into receptive positions — a
	// compiler infers new C<>() from an expected type, but never infers a
	// field-access receiver or an already-typed variable from one.
	receptive bool
}

func (r occRef) paramIDs() []string {
	if r.app == nil {
		return nil
	}
	var out []string
	for _, p := range r.app.Ctor.Params {
		if id, ok := r.params[p.ID()]; ok {
			out = append(out, id)
		}
	}
	for _, n := range r.nested {
		out = append(out, n.paramIDs()...)
	}
	return out
}

type builder struct {
	a      *Analysis
	g      *Graph
	occ    int
	varOcc map[string]occRef
}

func (b *builder) nextOcc() int {
	b.occ++
	return b.occ
}

// scopeParamNode returns the shared node for a type parameter that is in
// scope (a class or method declaration-site parameter).
func (b *builder) scopeParamNode(p *types.Parameter) string {
	n := b.g.AddScopeParamNode("scope:"+p.ID(), p)
	return n.ID
}

// registerType materializes a syntactic type occurrence. For type
// applications it creates the [type application] rule's nodes and edges:
// an application node, a parameter-occurrence node per position (def
// edges), and an edge of the given kind from each parameter occurrence to
// its argument (decl for explicit annotations, inf for types that are
// merely known, never erased). tpOccs, when non-nil, maps in-scope type
// parameter IDs to existing occurrence nodes, so positions mentioning them
// are linked rather than re-created.
func (b *builder) registerType(t types.Type, kind EdgeKind, tpOccs map[string]string) occRef {
	switch tt := t.(type) {
	case *types.App:
		occ := b.nextOcc()
		id := fmt.Sprintf("%s#%d", tt.String(), occ)
		b.g.AddAppNode(id, tt)
		ref := occRef{node: id, app: tt, params: map[string]string{}, nested: map[int]occRef{}}
		for i, p := range tt.Ctor.Params {
			pid := fmt.Sprintf("%s.%s#%d", tt.Ctor.TypeName, p.ParamName, occ)
			b.g.AddParamNode(pid, p)
			b.g.AddEdge(id, pid, DefEdge)
			ref.params[p.ID()] = pid
			arg := tt.Args[i]
			if proj, ok := arg.(*types.Projection); ok {
				arg = proj.Bound
			}
			switch at := arg.(type) {
			case *types.App:
				nested := b.registerType(at, kind, tpOccs)
				b.g.AddEdge(pid, nested.node, kind)
				ref.nested[i] = nested
			case *types.Parameter:
				if tpOccs != nil {
					if occNode, ok := tpOccs[at.ID()]; ok {
						// Dependent parameters: information flows both
						// ways between the occurrences.
						b.g.AddEdge(pid, occNode, InfEdge)
						b.g.AddEdge(occNode, pid, InfEdge)
						continue
					}
				}
				b.g.AddEdge(pid, b.scopeParamNode(at), kind)
			default:
				b.g.AddEdge(pid, b.g.AddTypeNode(arg).ID, kind)
			}
		}
		return ref
	case *types.Parameter:
		if tpOccs != nil {
			if occNode, ok := tpOccs[tt.ID()]; ok {
				return occRef{node: occNode}
			}
		}
		return occRef{node: b.scopeParamNode(tt)}
	default:
		return occRef{node: b.g.AddTypeNode(t).ID}
	}
}

// linkTarget records the unify′ dependencies of the [var param
// constructor] and [var param method call] rules: the (receptive)
// right-hand side's parameter occurrences are inferable from the declared
// target's corresponding occurrences. Information flows one way — from
// the annotation into the expression — matching what inference engines
// actually do with an expected type.
func (b *builder) linkTarget(annot, rhs occRef) {
	if !rhs.receptive {
		return
	}
	b.linkDirectional(rhs, annot)
}

// linkDirectional adds "to is inferred by from" edges between the
// corresponding parameter occurrences of two hierarchy-related
// occurrences.
func (b *builder) linkDirectional(to, from occRef) {
	if to.app == nil || from.app == nil {
		return
	}
	tc, fc := b.correspond(to, from)
	if tc == nil {
		return
	}
	for i := range tc {
		pt, pf := tc[i], fc[i]
		if pt.paramNode != "" && pf.paramNode != "" {
			b.g.AddEdge(pt.paramNode, pf.paramNode, InfEdge)
		}
		if pt.nested != nil && pf.nested != nil {
			// Nested receptivity follows the outer expression: an inner
			// diamond inside a receptive constructor call is receptive.
			inner := *pt.nested
			inner.receptive = true
			b.linkDirectional(inner, *pf.nested)
		}
	}
}

// position is one aligned argument position of two related occurrences.
type position struct {
	paramNode string
	nested    *occRef
}

// correspond aligns the argument positions of two occurrences whose
// application types are related through the class hierarchy, returning
// parallel slices (nil when the constructors are unrelated). For
// class B<T> : A<T>, positions of B<X> align with positions of A<X>.
func (b *builder) correspond(x, y occRef) ([]position, []position) {
	if x.app.Ctor.Equal(y.app.Ctor) {
		return positionsOf(x), positionsOf(y)
	}
	// Try climbing y's hierarchy to x's constructor.
	if xs, ys, ok := climb(b.g.Gov, x, y); ok {
		return xs, ys
	}
	if ys, xs, ok := climb(b.g.Gov, y, x); ok {
		return xs, ys
	}
	return nil, nil
}

func positionsOf(r occRef) []position {
	out := make([]position, len(r.app.Ctor.Params))
	for i, p := range r.app.Ctor.Params {
		out[i] = position{paramNode: r.params[p.ID()]}
		if n, ok := r.nested[i]; ok {
			nn := n
			out[i].nested = &nn
		}
	}
	return out
}

// climb maps sub's parameter occurrences into base's positions via sub's
// supertype chain: S(B<T>) = A<T> aligns B's T-occurrence with A's
// position 0.
func climb(gov *governor.Budget, base, sub occRef) ([]position, []position, bool) {
	selfArgs := make([]types.Type, len(sub.app.Ctor.Params))
	for i, p := range sub.app.Ctor.Params {
		selfArgs[i] = p
	}
	self := sub.app.Ctor.Apply(selfArgs...)
	for _, sup := range types.SuperChainB(gov, self) {
		app, ok := sup.(*types.App)
		if !ok || !app.Ctor.Equal(base.app.Ctor) {
			continue
		}
		basePos := positionsOf(base)
		subPos := make([]position, len(app.Args))
		for i, e := range app.Args {
			if p, isParam := e.(*types.Parameter); isParam {
				subPos[i] = position{paramNode: sub.params[p.ID()]}
				// Find the positional index of p in sub's ctor to carry
				// nested refs along.
				for j, sp := range sub.app.Ctor.Params {
					if sp.ID() == p.ID() {
						if n, ok := sub.nested[j]; ok {
							nn := n
							subPos[i].nested = &nn
						}
					}
				}
			}
		}
		return basePos, subPos, true
	}
	return nil, nil, false
}

// staticType returns the checker-recorded type of e (Top when unknown).
func (b *builder) staticType(e ir.Expr) types.Type {
	if t, ok := b.a.ExprTypes[e]; ok && t != nil {
		return t
	}
	return types.Top{}
}
