package typegraph

import (
	"repro/internal/ir"
	"repro/internal/types"
)

// CandidateKind enumerates the program points where the type-erasure
// mutation may remove type information (the four cases of Section 3.4.1)
// and the type-overwriting mutation may replace it (Section 3.4.2).
type CandidateKind int

const (
	// VarDeclType: a variable's declared type (var x: T = e → var x = e).
	VarDeclType CandidateKind = iota
	// NewTypeArgs: explicit constructor type arguments (new A<T>(e) →
	// new A<>(e)).
	NewTypeArgs
	// CallTypeArgs: explicit method type arguments (e.m<T>(x) → e.m(x)).
	CallTypeArgs
	// ReturnType: a method's declared return type (fun m(): T = e →
	// fun m() = e).
	ReturnType
	// LambdaParams: declared lambda parameter types ((x: T) -> e →
	// (x) -> e).
	LambdaParams
)

func (k CandidateKind) String() string {
	switch k {
	case VarDeclType:
		return "var-decl-type"
	case NewTypeArgs:
		return "new-type-args"
	case CallTypeArgs:
		return "call-type-args"
	case ReturnType:
		return "return-type"
	default:
		return "lambda-params"
	}
}

// Candidate is an erasable or overwritable program point, carrying both
// its type-graph footprint and the AST back-pointers the mutators rewrite.
type Candidate struct {
	Kind CandidateKind
	// NodeID is the candidate's principal graph node (a declaration node
	// for variables and returns, the application occurrence for explicit
	// type arguments).
	NodeID string
	// ParamNodeIDs are the type-parameter occurrence nodes belonging to
	// the candidate's annotation.
	ParamNodeIDs []string
	// EraseSet lists the node IDs whose outgoing decl edges the erasure
	// of this candidate removes (Definition 3.4).
	EraseSet []string
	// VanishNodes are nodes that cease to exist in the mutated program
	// (the parameter occurrences of a removed annotation). They are
	// exempt from the preservation check: an erased `: A<Long>` has no
	// A.T left to infer, whereas an erased instantiation `A<>(...)`
	// still does.
	VanishNodes []string

	// AST back-pointers; exactly the one matching Kind is set.
	Var        *ir.VarDecl
	NewExpr    *ir.New
	CallExpr   *ir.Call
	Fun        *ir.FuncDecl
	LambdaExpr *ir.Lambda

	// HasTarget marks lambda candidates whose parameter types are
	// recoverable from a target type.
	HasTarget bool
}

// erasureOf unions candidates' erase sets into an edge filter.
func erasureOf(cands []*Candidate) Erasure {
	e := Erasure{}
	for _, c := range cands {
		for _, id := range c.EraseSet {
			e[id] = true
		}
	}
	return e
}

// Preserves implements Definition 3.5 generalized as the paper's remark
// requires ("removal does not affect the typing of declarations and type
// parameters"): under the erasure of the given candidates, every
// declaration node and every type-parameter occurrence in the graph must
// keep its originally inferred type. This global condition subsumes the
// per-node Definition 3.5/3.6 and prevents an erased annotation from
// silently starving a non-candidate inference site.
func Preserves(g *Graph, cands ...*Candidate) bool {
	erased := erasureOf(cands)
	vanished := map[string]bool{}
	for _, c := range cands {
		if c.Kind == LambdaParams && !c.HasTarget {
			return false
		}
		for _, id := range c.VanishNodes {
			vanished[id] = true
		}
	}
	for _, id := range g.Nodes() {
		n := g.Node(id)
		if (!n.IsDecl && n.Param == nil) || n.Rigid || vanished[id] {
			continue
		}
		before := g.BaselineInfer(id)
		after := g.InferBlocked(id, erased, vanished)
		if !before.Equal(after) {
			return false
		}
	}
	return true
}

// RelevanceNodes returns the graph nodes type relevance (and hence TOM)
// is evaluated on: the declaration node for variables and returns, and the
// parameter occurrences for explicit type arguments (the shadowed nodes of
// Figure 6).
func (c *Candidate) RelevanceNodes() []string {
	switch c.Kind {
	case VarDeclType, ReturnType:
		return []string{c.NodeID}
	default:
		return c.ParamNodeIDs
	}
}

// InferAfterErasure returns infer(erasure(G, n), n) for one of a
// candidate's relevance nodes — the quantity type relevance
// (Definition 3.7) is stated over.
func InferAfterErasure(g *Graph, c *Candidate, node string) types.Type {
	return g.Infer(node, erasureOf([]*Candidate{c}))
}

// RelevantTo implements Definition 3.7: node n (a relevance node of
// candidate c) is relevant to type t when, after erasing n, the inferred
// type of n is a subtype of t. TOM overwrites a node with a type it is NOT
// relevant to, which guarantees a type error.
func RelevantTo(g *Graph, c *Candidate, node string, t types.Type) bool {
	inf := InferAfterErasure(g, c, node)
	if _, isBottom := inf.(types.Bottom); isBottom {
		// Nothing inferable: any overwrite may be consistent; treat as
		// relevant (unsafe to overwrite blindly).
		return true
	}
	return types.IsSubtypeB(g.Gov, inf, t)
}
