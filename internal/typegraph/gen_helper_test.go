package typegraph

import (
	"repro/internal/generator"
	"repro/internal/ir"
)

// genProgram produces a deterministic generated program for invariant
// tests.
func genProgram(seed int64) *ir.Program {
	return generator.New(generator.DefaultConfig().WithSeed(seed)).Generate()
}
