// Package typegraph implements the type-information model of Section 3.3:
// the type graph, the intra-procedural type inference analysis that builds
// it (Figure 5), and the type preservation / type relevance properties
// (Definitions 3.3–3.7) that the TEM and TOM mutations rely on.
//
// A type graph G = (V, E) has declaration nodes and type nodes, and edges
// labelled decl (explicitly declared types), inf (inferred types and
// type-parameter dependencies), and def (a type application containing its
// type parameters). Type-parameter *occurrences* — one per syntactic type
// application — are the pivotal nodes: erasing an annotation removes the
// decl edges of its parameter occurrences, and preservation asks whether
// every occurrence still reaches a concrete type.
package typegraph

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/governor"
	"repro/internal/types"
)

// EdgeKind labels a type-graph edge (L = {decl, inf, def}).
type EdgeKind int

const (
	// DeclEdge: the type of the source node is explicitly declared.
	DeclEdge EdgeKind = iota
	// InfEdge: the type of the source node is inferred from the target.
	InfEdge
	// DefEdge: the source type application contains the target parameter.
	DefEdge
)

func (k EdgeKind) String() string {
	switch k {
	case DeclEdge:
		return "decl"
	case InfEdge:
		return "inf"
	default:
		return "def"
	}
}

// Node is a vertex of the type graph. Exactly one of the roles applies:
//
//   - a declaration node (IsDecl) for variables, fields, and virtual
//     return-value declarations;
//   - a concrete type node (Type != nil), either a shared ground type or a
//     type-application occurrence;
//   - a type-parameter occurrence node (Param != nil) such as B.T:7.
type Node struct {
	ID     string
	IsDecl bool
	Type   types.Type
	Param  *types.Parameter
	// Rigid marks an in-scope declaration-site type parameter (a class or
	// method parameter visible where the method body mentions it). Unlike
	// occurrence nodes, a rigid parameter is itself a valid type the
	// compiler knows — it acts as a concrete source for inference.
	Rigid bool
}

func (n *Node) String() string { return n.ID }

// Edge is a directed, labelled edge.
type Edge struct {
	To   string
	Kind EdgeKind
}

// Graph is a type graph for one method (the analysis is intra-procedural).
type Graph struct {
	nodes map[string]*Node
	out   map[string][]Edge

	// Candidates are the erasable/overwritable program points discovered
	// while building the graph (double-circled and shadowed nodes of
	// Figure 6).
	Candidates []*Candidate

	// Gov, when set, meters the graph's inference walks: VisitedTypes
	// charges per visited node and InferBlocked runs its least upper
	// bounds through types.LubB, so a guarded budget bounds pathological
	// inference the same way it bounds the checker's relations. Nil means
	// unmetered (the mutation pipeline's default).
	Gov *governor.Budget

	// Memoized query state, dropped on any mutation. Preserves is called
	// once per candidate combination (worst case thousands of times per
	// graph) and both the sorted node list and the erasure-free baseline
	// inference are combination-independent, so recomputing them per call
	// dominated the whole mutation. A graph is built and then queried by a
	// single goroutine, so the memos need no locking.
	sortedIDs []string
	baseInfer map[string]types.Type
}

func (g *Graph) invalidate() {
	g.sortedIDs = nil
	g.baseInfer = nil
}

// NewGraph returns an empty type graph.
func NewGraph() *Graph {
	return &Graph{nodes: map[string]*Node{}, out: map[string][]Edge{}}
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id string) *Node { return g.nodes[id] }

// Nodes returns all node IDs in deterministic order. Callers must not
// mutate the returned slice: it is memoized until the graph changes.
func (g *Graph) Nodes() []string {
	if g.sortedIDs == nil {
		ids := make([]string, 0, len(g.nodes))
		for id := range g.nodes {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		g.sortedIDs = ids
	}
	return g.sortedIDs
}

// Edges returns the out-edges of a node.
func (g *Graph) Edges(id string) []Edge { return g.out[id] }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.out {
		n += len(es)
	}
	return n
}

func (g *Graph) ensure(n *Node) *Node {
	if existing, ok := g.nodes[n.ID]; ok {
		return existing
	}
	g.invalidate()
	g.nodes[n.ID] = n
	return n
}

// AddDeclNode adds (or returns) a declaration node.
func (g *Graph) AddDeclNode(id string) *Node {
	return g.ensure(&Node{ID: id, IsDecl: true})
}

// AddTypeNode adds (or returns) a shared concrete type node keyed by the
// type's rendering.
func (g *Graph) AddTypeNode(t types.Type) *Node {
	return g.ensure(&Node{ID: t.String(), Type: t})
}

// AddAppNode adds a type-application occurrence node with a unique ID.
func (g *Graph) AddAppNode(id string, t types.Type) *Node {
	return g.ensure(&Node{ID: id, Type: t})
}

// AddParamNode adds a type-parameter occurrence node.
func (g *Graph) AddParamNode(id string, p *types.Parameter) *Node {
	return g.ensure(&Node{ID: id, Param: p})
}

// AddScopeParamNode adds (or returns) the shared node for a rigid in-scope
// type parameter.
func (g *Graph) AddScopeParamNode(id string, p *types.Parameter) *Node {
	return g.ensure(&Node{ID: id, Param: p, Rigid: true})
}

// AddEdge inserts a directed edge, deduplicating exact repeats.
func (g *Graph) AddEdge(from, to string, kind EdgeKind) {
	for _, e := range g.out[from] {
		if e.To == to && e.Kind == kind {
			return
		}
	}
	g.invalidate()
	g.out[from] = append(g.out[from], Edge{To: to, Kind: kind})
}

// Erasure is a set of node IDs whose outgoing decl edges are removed —
// the erasure operation of Definition 3.4 expressed as an edge filter, so
// candidate combinations can be tested without copying the graph.
type Erasure map[string]bool

// VisitedTypes implements visitedTypes(G, n): all concrete type nodes
// reachable from n through decl or inf edges, under the given erasure.
// def edges are not followed. Nodes in blocked no longer exist in the
// mutated program (removed annotations) and are not traversed at all.
func (g *Graph) VisitedTypes(start string, erased Erasure, blocked map[string]bool) []types.Type {
	var out []types.Type
	seen := map[string]bool{}
	var dfs func(id string)
	dfs = func(id string) {
		g.Gov.Charge(1)
		if seen[id] || (blocked != nil && blocked[id] && id != start) {
			return
		}
		seen[id] = true
		n := g.nodes[id]
		if n == nil {
			return
		}
		if n.Type != nil && id != start {
			out = append(out, n.Type)
		}
		if n.Rigid && id != start {
			// A rigid scope parameter is itself a known type.
			out = append(out, n.Param)
		}
		for _, e := range g.out[id] {
			switch e.Kind {
			case DeclEdge:
				if erased != nil && erased[id] {
					continue // this node's decl edges are erased
				}
				dfs(e.To)
			case InfEdge:
				dfs(e.To)
			}
		}
	}
	dfs(start)
	return out
}

// Infer implements Definition 3.3: infer(G, n) = ⊔ visitedTypes(G, n),
// under an optional erasure.
func (g *Graph) Infer(start string, erased Erasure) types.Type {
	return g.InferBlocked(start, erased, nil)
}

// BaselineInfer is Infer(start, nil) memoized per graph — the erasure-free
// inference Preserves compares every candidate combination against.
func (g *Graph) BaselineInfer(start string) types.Type {
	if t, ok := g.baseInfer[start]; ok {
		return t
	}
	t := g.Infer(start, nil)
	if g.baseInfer == nil {
		g.baseInfer = make(map[string]types.Type, len(g.nodes))
	}
	g.baseInfer[start] = t
	return t
}

// InferBlocked is Infer with a set of non-traversable (vanished) nodes.
func (g *Graph) InferBlocked(start string, erased Erasure, blocked map[string]bool) types.Type {
	ts := g.VisitedTypes(start, erased, blocked)
	if len(ts) == 0 {
		return types.Bottom{}
	}
	return types.LubB(g.Gov, ts...)
}

// Dot renders the graph in Graphviz format; decl nodes are red boxes, type
// nodes blue, matching Figure 6's presentation.
func (g *Graph) Dot() string {
	var b strings.Builder
	b.WriteString("digraph typegraph {\n")
	for _, id := range g.Nodes() {
		n := g.nodes[id]
		shape, color := "ellipse", "blue"
		if n.IsDecl {
			shape, color = "box", "red"
		}
		fmt.Fprintf(&b, "  %q [shape=%s,color=%s];\n", id, shape, color)
	}
	for _, id := range g.Nodes() {
		for _, e := range g.out[id] {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", id, e.To, e.Kind)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
