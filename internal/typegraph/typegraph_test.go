package typegraph

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/types"
)

// figure6 builds the paper's Figure 6 program:
//
//	open class A<T>
//	class B<T>(val f: A<T>) : A<T>()
//	fun m(): A<String> = B<String>(A<String>())
func figure6() (*ir.Program, *types.Builtins, *ir.FuncDecl) {
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)
	bT := types.NewParameter("B", "T")
	classB := &ir.ClassDecl{
		Name:       "B",
		TypeParams: []*types.Parameter{bT},
		Super:      &ir.SuperRef{Type: ctorA.Apply(bT)},
		Fields:     []*ir.FieldDecl{{Name: "f", Type: ctorA.Apply(bT)}},
	}
	ctorB := classB.Type().(*types.Constructor)
	m := &ir.FuncDecl{
		Name: "m",
		Ret:  ctorA.Apply(b.String),
		Body: &ir.New{
			Class:    ctorB,
			TypeArgs: []types.Type{b.String},
			Args: []ir.Expr{&ir.New{
				Class:    ctorA,
				TypeArgs: []types.Type{b.String},
			}},
		},
	}
	return &ir.Program{Decls: []ir.Decl{classA, classB, m}}, b, m
}

func buildFigure6(t *testing.T) *Graph {
	t.Helper()
	p, b, m := figure6()
	a := Analyze(p, b)
	if !a.Result.OK() {
		t.Fatalf("figure 6 program must type-check: %v", a.Result.Diags)
	}
	return a.BuildGraph(m, nil)
}

func candidatesByKind(g *Graph, k CandidateKind) []*Candidate {
	var out []*Candidate
	for _, c := range g.Candidates {
		if c.Kind == k {
			out = append(out, c)
		}
	}
	return out
}

func TestFigure6Candidates(t *testing.T) {
	g := buildFigure6(t)
	// The paper's Figure 6 marks exactly three erasure candidates: the
	// return type of m and the two constructor instantiations.
	if n := len(candidatesByKind(g, ReturnType)); n != 1 {
		t.Errorf("ReturnType candidates = %d, want 1", n)
	}
	if n := len(candidatesByKind(g, NewTypeArgs)); n != 2 {
		t.Errorf("NewTypeArgs candidates = %d, want 2", n)
	}
	if n := len(g.Candidates); n != 3 {
		t.Errorf("total candidates = %d, want 3", n)
	}
}

func TestFigure6InferReturn(t *testing.T) {
	g := buildFigure6(t)
	ret := candidatesByKind(g, ReturnType)[0]
	got := g.Infer(ret.NodeID, nil)
	if got.String() != "A<String>" {
		t.Errorf("infer(m.ret) = %s, want A<String>", got)
	}
}

func TestFigure6ReturnNotPreserved(t *testing.T) {
	g := buildFigure6(t)
	ret := candidatesByKind(g, ReturnType)[0]
	// Erasing the return annotation changes the inferred type of m.ret
	// from A<String> to B<String> — the paper filters m.ret out.
	if Preserves(g, ret) {
		t.Error("m.ret must NOT preserve its type (A<String> → B<String>)")
	}
	after := g.Infer(ret.NodeID, erasureOf([]*Candidate{ret}))
	if after.String() != "B<String>" {
		t.Errorf("infer after erasing m.ret = %s, want B<String>", after)
	}
}

func TestFigure6MaximalErasure(t *testing.T) {
	g := buildFigure6(t)
	news := candidatesByKind(g, NewTypeArgs)
	if len(news) != 2 {
		t.Fatalf("need 2 New candidates, got %d", len(news))
	}
	// Each constructor instantiation preserves alone...
	for _, c := range news {
		if !Preserves(g, c) {
			t.Errorf("candidate %s must preserve alone (graph:\n%s)", c.NodeID, g.Dot())
		}
	}
	// ... and the paper's maximal combination {B<String>:7, A<String>:8}
	// preserves jointly: both parameters still reach String through the
	// return annotation.
	if !Preserves(g, news[0], news[1]) {
		t.Errorf("the maximal pair must preserve jointly; graph:\n%s", g.Dot())
	}
}

func TestFigure6FullErasureNotPreserved(t *testing.T) {
	g := buildFigure6(t)
	// Erasing everything (return type + both instantiations) starves the
	// parameters of any concrete source: fun m() = B(A()) is uninferable.
	if Preserves(g, g.Candidates...) {
		t.Errorf("erasing all three candidates must not preserve; graph:\n%s", g.Dot())
	}
}

func TestSection341Example(t *testing.T) {
	// class A<T>(val f: T); val x: Any = "str"; val y: A<Any> = A<Any>(x)
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{
		Name: "A", TypeParams: []*types.Parameter{aT},
		Fields: []*ir.FieldDecl{{Name: "f", Type: aT}},
	}
	ctorA := classA.Type().(*types.Constructor)
	test := &ir.FuncDecl{Name: "test", Body: &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "x", DeclType: types.Top{}, Init: &ir.Const{Type: b.String}},
		&ir.VarDecl{
			Name:     "y",
			DeclType: ctorA.Apply(types.Top{}),
			Init: &ir.New{Class: ctorA, TypeArgs: []types.Type{types.Top{}},
				Args: []ir.Expr{&ir.VarRef{Name: "x"}}},
		},
	}}}
	p := &ir.Program{Decls: []ir.Decl{classA, test}}
	a := Analyze(p, b)
	if !a.Result.OK() {
		t.Fatalf("program must type-check: %v", a.Result.Diags)
	}
	g := a.BuildGraph(test, nil)

	vars := candidatesByKind(g, VarDeclType)
	if len(vars) != 2 {
		t.Fatalf("want 2 var candidates, got %d", len(vars))
	}
	var xCand, yCand *Candidate
	for _, c := range vars {
		switch c.Var.Name {
		case "x":
			xCand = c
		case "y":
			yCand = c
		}
	}
	// Erasing x's declared type changes its inferred type Any → String:
	// not preserved (this is what makes the combined erasure unsafe).
	if Preserves(g, xCand) {
		t.Error("x must not preserve its type (Any → String)")
	}
	// Erasing y's declared type alone is fine: the right-hand side is an
	// explicit A<Any>(x).
	if !Preserves(g, yCand) {
		t.Errorf("y must preserve its type; graph:\n%s", g.Dot())
	}
	// The constructor instantiation may be erased alone (target type
	// recovers it)...
	news := candidatesByKind(g, NewTypeArgs)
	if len(news) != 1 {
		t.Fatalf("want 1 New candidate, got %d", len(news))
	}
	if !Preserves(g, news[0]) {
		t.Errorf("A<Any>(x) must preserve alone; graph:\n%s", g.Dot())
	}
	// ...and even together with y's annotation (the argument x: Any still
	// pins T = Any). The combination the paper warns about — x's declared
	// type together with the instantiation — must NOT preserve, which is
	// why Algorithm 2's line-5 filter drops x up front.
	if !Preserves(g, yCand, news[0]) {
		t.Errorf("erasing y's type AND the instantiation keeps T = Any; graph:\n%s", g.Dot())
	}
	if Preserves(g, xCand, news[0]) {
		t.Error("erasing x's type AND the instantiation must not preserve (the paper's counterexample)")
	}
}

func TestTypeRelevance(t *testing.T) {
	g := buildFigure6(t)
	b := types.NewBuiltins()
	news := candidatesByKind(g, NewTypeArgs)
	// After erasing an instantiation, its parameter occurrence infers
	// String; it is relevant to String and Any, not to Int (the paper's
	// TOM example replaces A<String> with A<Int> precisely because of
	// this).
	for _, cand := range news {
		nodes := cand.RelevanceNodes()
		if len(nodes) != 1 {
			t.Fatalf("want 1 relevance node, got %v", nodes)
		}
		node := nodes[0]
		inf := InferAfterErasure(g, cand, node)
		if inf.String() != "String" {
			t.Fatalf("infer after erasure of %s = %s, want String; graph:\n%s", node, inf, g.Dot())
		}
		if !RelevantTo(g, cand, node, b.String) {
			t.Error("node must be relevant to String")
		}
		if !RelevantTo(g, cand, node, types.Top{}) {
			t.Error("node must be relevant to Any")
		}
		if RelevantTo(g, cand, node, b.Int) {
			t.Error("node must NOT be relevant to Int")
		}
	}
}

func TestGraphBasics(t *testing.T) {
	g := NewGraph()
	b := types.NewBuiltins()
	d := g.AddDeclNode("var:x")
	ty := g.AddTypeNode(b.String)
	g.AddEdge(d.ID, ty.ID, DeclEdge)
	g.AddEdge(d.ID, ty.ID, DeclEdge) // deduplicated
	if g.NumEdges() != 1 {
		t.Errorf("duplicate edges must collapse, got %d", g.NumEdges())
	}
	if got := g.Infer("var:x", nil); !got.Equal(b.String) {
		t.Errorf("infer = %s", got)
	}
	if got := g.Infer("var:x", Erasure{"var:x": true}); !got.Equal(types.Bottom{}) {
		t.Errorf("erased infer = %s, want Nothing", got)
	}
	if g.Node("missing") != nil {
		t.Error("missing node must be nil")
	}
}

func TestInferFollowsInfButNotDef(t *testing.T) {
	g := NewGraph()
	b := types.NewBuiltins()
	d := g.AddDeclNode("n")
	mid := g.AddDeclNode("mid")
	str := g.AddTypeNode(b.String)
	intN := g.AddTypeNode(b.Int)
	g.AddEdge(d.ID, mid.ID, InfEdge)
	g.AddEdge(mid.ID, str.ID, InfEdge)
	g.AddEdge(d.ID, intN.ID, DefEdge) // def edges are not traversed
	if got := g.Infer("n", nil); !got.Equal(b.String) {
		t.Errorf("infer = %s, want String (def edge must be ignored)", got)
	}
}

func TestDotRendering(t *testing.T) {
	g := buildFigure6(t)
	dot := g.Dot()
	for _, want := range []string{"digraph typegraph", "m.ret", "String", "decl", "inf", "def"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
}

func TestBuildAll(t *testing.T) {
	p, b, _ := figure6()
	// Add a method to class B to confirm class methods are covered.
	p.ClassByName("B").Methods = append(p.ClassByName("B").Methods, &ir.FuncDecl{
		Name: "g", Ret: b.Int, Body: &ir.Const{Type: b.Int},
	})
	a := Analyze(p, b)
	graphs := a.BuildAll()
	if _, ok := graphs["m"]; !ok {
		t.Error("missing graph for m")
	}
	if _, ok := graphs["B.g"]; !ok {
		t.Error("missing graph for B.g")
	}
}

func TestFigure1ClosureFieldFlow(t *testing.T) {
	// The Figure 1 shape: val closure = { B<>(A<Long>()) };
	// val x: A<Long> = closure().f. The type information must flow from
	// the inner A<Long> through the lambda and field access to x.
	b := types.NewBuiltins()
	aT := types.NewParameter("A", "T")
	classA := &ir.ClassDecl{Name: "A", TypeParams: []*types.Parameter{aT}, Open: true}
	ctorA := classA.Type().(*types.Constructor)
	bT := types.NewParameter("B", "T")
	classB := &ir.ClassDecl{Name: "B", TypeParams: []*types.Parameter{bT},
		Fields: []*ir.FieldDecl{{Name: "f", Type: bT}}}
	ctorB := classB.Type().(*types.Constructor)

	test := &ir.FuncDecl{Name: "test", Body: &ir.Block{Stmts: []ir.Node{
		&ir.VarDecl{Name: "closure", Init: &ir.Lambda{Body: &ir.New{
			Class: ctorB,
			Args:  []ir.Expr{&ir.New{Class: ctorA, TypeArgs: []types.Type{b.Long}}},
		}}},
		&ir.VarDecl{
			Name:     "x",
			DeclType: ctorA.Apply(b.Long),
			Init:     &ir.FieldAccess{Recv: &ir.Call{Name: "closure"}, Field: "f"},
		},
	}}}
	p := &ir.Program{Decls: []ir.Decl{classA, classB, test}}
	a := Analyze(p, b)
	if !a.Result.OK() {
		t.Fatalf("figure 1 program must type-check: %v", a.Result.Diags)
	}
	g := a.BuildGraph(test, nil)
	// var:x must infer A<Long>.
	if got := g.Infer("var:x", nil); got.String() != "A<Long>" {
		t.Errorf("infer(var:x) = %s, want A<Long>", got)
	}
	// And x's annotation is erasable: the right-hand side pins the type.
	for _, c := range candidatesByKind(g, VarDeclType) {
		if c.Var.Name == "x" && !Preserves(g, c) {
			t.Errorf("x's declared type should be erasable; graph:\n%s", g.Dot())
		}
	}
}

// TestCallTypeArgsCandidate covers explicit method type arguments as
// erasure candidates (TEM case: e.m<T>(x) → e.m(x)).
func TestCallTypeArgsCandidate(t *testing.T) {
	b := types.NewBuiltins()
	// fun <T> id(x: T): T = x; fun test() { val s: String = id<String>("s") }
	tp := types.NewParameter("id", "T")
	id := &ir.FuncDecl{
		Name:       "id",
		TypeParams: []*types.Parameter{tp},
		Params:     []*ir.ParamDecl{{Name: "x", Type: tp}},
		Ret:        tp,
		Body:       &ir.VarRef{Name: "x"},
	}
	test := &ir.FuncDecl{Name: "test", Ret: b.Unit, Body: &ir.Block{
		Stmts: []ir.Node{&ir.VarDecl{
			Name:     "s",
			DeclType: b.String,
			Init: &ir.Call{Name: "id", TypeArgs: []types.Type{b.String},
				Args: []ir.Expr{&ir.Const{Type: b.String}}},
		}},
		Value: &ir.Const{Type: b.Unit},
	}}
	p := &ir.Program{Decls: []ir.Decl{id, test}}
	a := Analyze(p, b)
	if !a.Result.OK() {
		t.Fatalf("program must check: %v", a.Result.Diags)
	}
	g := a.BuildGraph(test, nil)
	calls := candidatesByKind(g, CallTypeArgs)
	if len(calls) != 1 {
		t.Fatalf("want 1 CallTypeArgs candidate, got %d", len(calls))
	}
	// The argument "s" pins T = String, so the explicit instantiation is
	// erasable.
	if !Preserves(g, calls[0]) {
		t.Errorf("id<String>(\"s\") should be erasable; graph:\n%s", g.Dot())
	}
	// And its relevance node infers String.
	nodes := calls[0].RelevanceNodes()
	if len(nodes) != 1 {
		t.Fatalf("relevance nodes = %v", nodes)
	}
	if inf := InferAfterErasure(g, calls[0], nodes[0]); inf.String() != "String" {
		t.Errorf("infer after erasure = %s, want String", inf)
	}
}

// TestUnconstrainedCallTypeArgsNotErasable: with neither argument nor
// target evidence, explicit type arguments must be kept.
func TestUnconstrainedCallTypeArgsNotErasable(t *testing.T) {
	b := types.NewBuiltins()
	// fun <T> mk(): Int = 1; fun test() { val n: Int = mk<String>() } —
	// T appears nowhere else; erasing <String> leaves T uninferable.
	tp := types.NewParameter("mk", "T")
	mk := &ir.FuncDecl{
		Name:       "mk",
		TypeParams: []*types.Parameter{tp},
		Ret:        b.Int,
		Body:       &ir.Const{Type: b.Int},
	}
	test := &ir.FuncDecl{Name: "test", Ret: b.Unit, Body: &ir.Block{
		Stmts: []ir.Node{&ir.VarDecl{
			Name: "n", DeclType: b.Int,
			Init: &ir.Call{Name: "mk", TypeArgs: []types.Type{b.String}},
		}},
		Value: &ir.Const{Type: b.Unit},
	}}
	p := &ir.Program{Decls: []ir.Decl{mk, test}}
	a := Analyze(p, b)
	g := a.BuildGraph(test, nil)
	for _, c := range candidatesByKind(g, CallTypeArgs) {
		if Preserves(g, c) {
			t.Errorf("unconstrained type argument must not be erasable; graph:\n%s", g.Dot())
		}
	}
}

// TestGraphInvariantsOnGeneratedPrograms checks structural invariants of
// every graph built from generated programs: edges reference existing
// nodes, candidates' erase sets name real nodes, def edges only leave
// application nodes, and Infer is deterministic.
func TestGraphInvariantsOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g := generatorProgram(seed)
		a := Analyze(g, types.NewBuiltins())
		for name, graph := range a.BuildAll() {
			for _, id := range graph.Nodes() {
				if graph.Node(id) == nil {
					t.Fatalf("seed %d %s: Nodes() returned a missing node %s", seed, name, id)
				}
				for _, e := range graph.Edges(id) {
					if graph.Node(e.To) == nil {
						t.Fatalf("seed %d %s: edge %s -> %s dangles", seed, name, id, e.To)
					}
					if e.Kind == DefEdge {
						n := graph.Node(id)
						if n.Type == nil {
							t.Errorf("seed %d %s: def edge from non-application %s", seed, name, id)
						}
					}
				}
			}
			for _, c := range graph.Candidates {
				for _, id := range c.EraseSet {
					if graph.Node(id) == nil {
						t.Errorf("seed %d %s: candidate %s erases missing node %s",
							seed, name, c.Kind, id)
					}
				}
				// Infer is deterministic.
				i1 := graph.Infer(c.NodeID, nil)
				i2 := graph.Infer(c.NodeID, nil)
				if !i1.Equal(i2) {
					t.Errorf("seed %d %s: Infer nondeterministic on %s", seed, name, c.NodeID)
				}
			}
		}
	}
}

func generatorProgram(seed int64) *ir.Program {
	// Local import indirection to avoid a test-only dependency cycle.
	return genProgram(seed)
}
