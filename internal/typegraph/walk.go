package typegraph

import (
	"fmt"

	"repro/internal/checker"
	"repro/internal/ir"
	"repro/internal/types"
)

// walkExpr applies the analysis rules of Figure 5 to an expression,
// returning the occurrence reference carrying its type information.
func (b *builder) walkExpr(e ir.Expr) occRef {
	switch t := e.(type) {
	case *ir.Const:
		return occRef{node: b.g.AddTypeNode(t.Type).ID}

	case *ir.VarRef:
		if ref, ok := b.varOcc[t.Name]; ok {
			return ref
		}
		return occRef{node: b.g.AddTypeNode(b.staticType(t)).ID}

	case *ir.FieldAccess:
		return b.walkFieldAccess(t)

	case *ir.BinaryOp:
		b.walkExpr(t.Left)
		b.walkExpr(t.Right)
		return occRef{node: b.g.AddTypeNode(b.a.Env.Builtins.Boolean).ID}

	case *ir.Block:
		for _, s := range t.Stmts {
			switch st := s.(type) {
			case *ir.VarDecl:
				b.walkVarDecl(st)
			case *ir.Assign:
				b.walkAssign(st)
			case ir.Expr:
				b.walkExpr(st)
			}
		}
		if t.Value == nil {
			return occRef{node: b.g.AddTypeNode(b.a.Env.Builtins.Unit).ID}
		}
		return b.walkExpr(t.Value)

	case *ir.Call:
		return b.walkCall(t)

	case *ir.New:
		return b.walkNew(t)

	case *ir.Assign:
		b.walkAssign(t)
		return occRef{node: b.g.AddTypeNode(b.a.Env.Builtins.Unit).ID}

	case *ir.If:
		b.walkExpr(t.Cond)
		thenRef := b.walkExpr(t.Then)
		elseRef := b.walkExpr(t.Else)
		join := b.g.AddDeclNode(fmt.Sprintf("if#%d", b.nextOcc()))
		b.g.AddEdge(join.ID, thenRef.node, InfEdge)
		b.g.AddEdge(join.ID, elseRef.node, InfEdge)
		return occRef{node: join.ID}

	case *ir.MethodRef:
		b.walkExpr(t.Recv)
		return occRef{node: b.g.AddTypeNode(b.staticType(t)).ID}

	case *ir.Lambda:
		inner := map[string]occRef{}
		for name, ref := range b.varOcc {
			inner[name] = ref
		}
		saved := b.varOcc
		b.varOcc = inner
		ft, _ := b.staticType(t).(*types.Func)
		for i, p := range t.Params {
			pt := p.Type
			if pt == nil && ft != nil && i < len(ft.Params) {
				pt = ft.Params[i]
			}
			if pt != nil {
				ref := b.registerType(pt, DeclEdge, nil)
				node := b.g.AddDeclNode(fmt.Sprintf("lparam:%s#%d", p.Name, b.nextOcc()))
				b.g.AddEdge(node.ID, ref.node, DeclEdge)
				ref.node = node.ID
				b.varOcc[p.Name] = ref
			}
		}
		b.walkExpr(t.Body)
		b.varOcc = saved
		return occRef{node: b.g.AddTypeNode(b.staticType(t)).ID}

	case *ir.Cast:
		b.walkExpr(t.Expr)
		return b.registerType(t.Target, InfEdge, nil)

	case *ir.Is:
		b.walkExpr(t.Expr)
		return occRef{node: b.g.AddTypeNode(b.a.Env.Builtins.Boolean).ID}
	}
	return occRef{node: b.g.AddTypeNode(types.Top{}).ID}
}

// walkVarDecl implements the [var decl], [var param constructor], and
// [var param method call] rules: decl and inf edges for the variable,
// plus unify′ dependency links between the declared type's and the
// initializer's parameter occurrences.
func (b *builder) walkVarDecl(v *ir.VarDecl) {
	if v.Init == nil {
		return
	}
	rhs := b.walkExpr(v.Init)
	node := b.g.AddDeclNode("var:" + v.Name)
	b.g.AddEdge(node.ID, rhs.node, InfEdge)

	stored := rhs
	stored.node = node.ID
	stored.receptive = false // uses of the variable are not target-receptive
	if v.DeclType != nil {
		declRef := b.registerType(v.DeclType, DeclEdge, nil)
		b.g.AddEdge(node.ID, declRef.node, DeclEdge)
		b.linkTarget(declRef, rhs)
		b.g.Candidates = append(b.g.Candidates, &Candidate{
			Kind:         VarDeclType,
			NodeID:       node.ID,
			ParamNodeIDs: declRef.paramIDs(),
			EraseSet:     append([]string{node.ID}, declRef.paramIDs()...),
			VanishNodes:  declRef.paramIDs(),
			Var:          v,
		})
		// The variable's positional structure is its declared type's.
		stored = declRef
		stored.node = node.ID
		stored.receptive = false
	}
	b.varOcc[v.Name] = stored
}

func (b *builder) walkAssign(a *ir.Assign) {
	rhs := b.walkExpr(a.Value)
	if vr, ok := a.Target.(*ir.VarRef); ok {
		if ref, exists := b.varOcc[vr.Name]; exists {
			// Flow-sensitivity: the assigned value feeds the variable's
			// inferred type (Groovy's flow typing, Figure 11c), and the
			// variable's fixed type is the assigned value's target.
			b.g.AddEdge(ref.node, rhs.node, InfEdge)
			b.linkTarget(ref, rhs)
			return
		}
	}
	if fa, ok := a.Target.(*ir.FieldAccess); ok {
		target := b.walkFieldAccess(fa)
		b.g.AddEdge(target.node, rhs.node, InfEdge)
		b.linkTarget(target, rhs)
	}
}

// walkFieldAccess resolves e.f and exposes the field's type structure in
// terms of the receiver occurrence's parameter nodes, so that type
// information flows through field reads (the closure().f chain of
// Figure 1).
func (b *builder) walkFieldAccess(fa *ir.FieldAccess) occRef {
	recv := b.walkExpr(fa.Recv)
	static := b.staticType(fa)

	recvType := b.staticType(fa.Recv)
	if app, ok := recvType.(*types.App); ok && recv.app != nil && app.Ctor.Equal(recv.app.Ctor) {
		if cls := b.a.Env.Class(app.Ctor.TypeName); cls != nil {
			if fd := cls.FieldByName(fa.Field); fd != nil {
				tpOccs := map[string]string{}
				for id, n := range recv.params {
					tpOccs[id] = n
				}
				ref := b.registerType(fd.Type, InfEdge, tpOccs)
				if ref.app == nil {
					if app2, isApp := static.(*types.App); isApp {
						ref.app = app2
					}
				}
				return ref
			}
		}
	}
	// Inherited or structurally opaque field: fall back to the static type.
	return occRef{node: b.g.AddTypeNode(static).ID}
}

// walkNew implements the constructor-invocation rules: the [type
// application] treatment of its (possibly explicit) instantiation, field
// declaration nodes with decl/inf edges, and [param call]-style dependency
// links between the instantiation's parameters and the arguments' types.
func (b *builder) walkNew(n *ir.New) occRef {
	static := b.staticType(n)
	app, isApp := static.(*types.App)
	if !isApp {
		// Unparameterized class: just walk arguments.
		for _, a := range n.Args {
			b.walkExpr(a)
		}
		return occRef{node: b.g.AddTypeNode(static).ID}
	}
	cls := b.a.Env.Class(app.Ctor.TypeName)
	explicit := n.TypeArgs != nil
	kind := InfEdge
	if explicit {
		kind = DeclEdge
	}
	ref := b.registerType(app, kind, nil)
	ref.receptive = true // diamonds are inferred from their target type
	if !explicit {
		// Diamond: the instantiation carries no declared arguments —
		// remove the decl-ness by rebuilding with inf edges (registerType
		// already used InfEdge via kind).
		_ = kind
	}
	if explicit && cls != nil {
		b.g.Candidates = append(b.g.Candidates, &Candidate{
			Kind:         NewTypeArgs,
			NodeID:       ref.node,
			ParamNodeIDs: ref.paramIDs(),
			EraseSet:     ref.paramIDs(),
			NewExpr:      n,
		})
	}
	if cls == nil {
		for _, a := range n.Args {
			b.walkExpr(a)
		}
		return ref
	}
	// Constructor arguments flow into field positions ([param call] via
	// the paper's "constructor with call arguments is modeled as calling
	// a parameterized method").
	for i, arg := range n.Args {
		if i >= len(cls.Fields) {
			b.walkExpr(arg)
			continue
		}
		fd := cls.Fields[i]
		argRef := b.walkExpr(arg)
		b.linkParamFlowOccs(fd.Type, ref.params, argRef)

		// Field declaration node (B<String>.f in Figure 6): declared type
		// in terms of the instantiation, inferred from the argument.
		fieldNode := b.g.AddDeclNode(fmt.Sprintf("%s.%s#%d", cls.Name, fd.Name, b.nextOcc()))
		declRef := b.registerType(fd.Type, InfEdge, ref.params)
		b.g.AddEdge(fieldNode.ID, declRef.node, DeclEdge)
		b.g.AddEdge(fieldNode.ID, argRef.node, InfEdge)
	}
	return ref
}

// linkParamFlowOccs links an argument's occurrence into a callee's
// parameter occurrences ([param call]): paramType is the declared
// parameter (or field) type, whose type-parameter mentions resolve through
// occs. The callee's parameters are always inferable from the argument's
// type; the reverse — the argument inferred from the (substituted)
// parameter type — only holds for target-receptive arguments.
func (b *builder) linkParamFlowOccs(paramType types.Type, occs map[string]string, argRef occRef) {
	switch pt := paramType.(type) {
	case *types.Parameter:
		if occNode, ok := occs[pt.ID()]; ok {
			// The whole argument instantiates this parameter.
			b.g.AddEdge(occNode, argRef.node, InfEdge)
		}
	case *types.App:
		if argRef.app == nil {
			return
		}
		// Align the parameter type's positions with the argument's
		// occurrence positions, climbing the hierarchy when needed.
		synthetic := occRef{app: pt, params: map[string]string{}, nested: map[int]occRef{}}
		for i, a := range pt.Args {
			if proj, ok := a.(*types.Projection); ok {
				a = proj.Bound
			}
			if p, ok := a.(*types.Parameter); ok {
				if occNode, exists := occs[p.ID()]; exists {
					synthetic.params[ctorParamID(pt, i)] = occNode
				}
			}
		}
		b.linkAligned(pt, synthetic, argRef, occs)
	}
}

// ctorParamID returns the constructor parameter ID for position i of app.
func ctorParamID(app *types.App, i int) string {
	return app.Ctor.Params[i].ID()
}

// linkAligned walks pt's argument positions against argRef's occurrence,
// adding inf edges between dependent parameter occurrences.
func (b *builder) linkAligned(pt *types.App, synthetic occRef, argRef occRef, occs map[string]string) {
	xPos, yPos := b.correspond(synthetic, argRef)
	if xPos == nil {
		return
	}
	for i := range xPos {
		if i >= len(pt.Args) {
			break
		}
		a := pt.Args[i]
		if proj, ok := a.(*types.Projection); ok {
			a = proj.Bound
		}
		switch at := a.(type) {
		case *types.Parameter:
			if occNode, exists := occs[at.ID()]; exists && yPos[i].paramNode != "" {
				// Callee parameter inferred from the argument: always.
				b.g.AddEdge(occNode, yPos[i].paramNode, InfEdge)
				// Argument inferred from the callee parameter (the
				// compiler passing a target into the argument): only for
				// receptive arguments.
				if argRef.receptive {
					b.g.AddEdge(yPos[i].paramNode, occNode, InfEdge)
				}
			}
		case *types.App:
			if yPos[i].nested != nil {
				inner := *yPos[i].nested
				inner.receptive = argRef.receptive
				b.linkParamFlowOccs(at, occs, inner)
			}
		}
	}
}

// walkCall implements the [param call] and [var param method call] rules
// for method and function calls, including explicit type-argument
// occurrences (erasure candidates) and return-type linking.
func (b *builder) walkCall(call *ir.Call) occRef {
	var sig checker.MethodSig
	var found bool
	if call.Recv != nil {
		recvRef := b.walkExpr(call.Recv)
		_ = recvRef
		recvType := b.staticType(call.Recv)
		sig, found = b.a.Env.MethodOf(recvType, call.Name)
	} else {
		sig, found = b.a.Env.TopLevelSig(call.Name)
		if !found {
			// Lambda-typed variable invocation: closure().
			if ref, ok := b.varOcc[call.Name]; ok {
				_ = ref
			}
		}
	}
	static := b.staticType(call)
	if !found {
		for _, a := range call.Args {
			b.walkExpr(a)
		}
		// The call's result may still carry structure (e.g. invoking a
		// lambda variable whose inferred type is B<A<Long>>): give it an
		// occurrence so downstream field accesses can link.
		if app, ok := static.(*types.App); ok {
			return b.registerType(app, InfEdge, nil)
		}
		return occRef{node: b.g.AddTypeNode(static).ID}
	}

	// Type-argument occurrences for the method's own parameters.
	occs := map[string]string{}
	var paramNodeIDs []string
	occ := b.nextOcc()
	for _, tp := range sig.TypeParams {
		pid := fmt.Sprintf("%s.%s#%d", call.Name, tp.ParamName, occ)
		b.g.AddParamNode(pid, tp)
		occs[tp.ID()] = pid
		paramNodeIDs = append(paramNodeIDs, pid)
	}
	if call.TypeArgs != nil && len(call.TypeArgs) == len(sig.TypeParams) {
		var eraseSet []string
		for i, ta := range call.TypeArgs {
			ref := b.registerType(ta, DeclEdge, nil)
			b.g.AddEdge(occs[sig.TypeParams[i].ID()], ref.node, DeclEdge)
			eraseSet = append(eraseSet, ref.paramIDs()...)
		}
		eraseSet = append(eraseSet, paramNodeIDs...)
		b.g.Candidates = append(b.g.Candidates, &Candidate{
			Kind:         CallTypeArgs,
			NodeID:       paramNodeIDs[0],
			ParamNodeIDs: paramNodeIDs,
			EraseSet:     eraseSet,
			CallExpr:     call,
		})
	}
	// Arguments flow into parameter positions ([param call]).
	for i, arg := range call.Args {
		argRef := b.walkExpr(arg)
		if i < len(sig.Params) && sig.Params[i] != nil {
			b.linkParamFlowOccs(sig.Params[i], occs, argRef)
		}
	}
	// The return type, with method type-parameter mentions wired to this
	// call's occurrences ([var param method call] when a target exists).
	retDecl := sig.Ret
	if retDecl == nil && sig.Decl != nil {
		retDecl = static
	}
	ref := b.registerType(retDecl, InfEdge, occs)
	if ref.app == nil {
		if app, ok := static.(*types.App); ok {
			ref.app = app
		}
	}
	// Parameterized calls accept a target type ([var param method call]).
	ref.receptive = len(sig.TypeParams) > 0
	return ref
}
