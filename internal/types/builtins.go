package types

// Builtins is the universe of built-in types supported by the IR
// (Section 3.2: "built-in types (e.g., Int, String, Array) supported by
// the language under test" are a constant input to the generator).
// The hierarchy mirrors the JVM boxed numeric tower used by all three
// target languages: Byte/Short/Int/Long/Float/Double <: Number <: Any,
// plus Boolean, Char, String, and Unit. Translators map the neutral names
// to language spellings (Int → Integer/int in Java, Int in Kotlin, Integer
// in Groovy).
type Builtins struct {
	Any     Type
	Nothing Type

	Number  *Simple
	Byte    *Simple
	Short   *Simple
	Int     *Simple
	Long    *Simple
	Float   *Simple
	Double  *Simple
	Boolean *Simple
	Char    *Simple
	String  *Simple
	Unit    *Simple

	// Array is the built-in invariant Array<T> constructor.
	Array *Constructor
}

// NewBuiltins constructs a fresh builtin universe. Each call returns
// independent *Simple values, but Equal compares by name, so universes are
// interchangeable.
func NewBuiltins() *Builtins {
	b := &Builtins{Any: Top{}, Nothing: Bottom{}}
	b.Number = &Simple{TypeName: "Number", Builtin: true}
	mkNum := func(name string) *Simple {
		return &Simple{TypeName: name, Super: b.Number, Builtin: true, Final: true}
	}
	b.Byte = mkNum("Byte")
	b.Short = mkNum("Short")
	b.Int = mkNum("Int")
	b.Long = mkNum("Long")
	b.Float = mkNum("Float")
	b.Double = mkNum("Double")
	b.Boolean = &Simple{TypeName: "Boolean", Builtin: true, Final: true}
	b.Char = &Simple{TypeName: "Char", Builtin: true, Final: true}
	b.String = &Simple{TypeName: "String", Builtin: true, Final: true}
	b.Unit = &Simple{TypeName: "Unit", Builtin: true, Final: true}
	b.Array = NewConstructor("Array", []*Parameter{NewParameter("Array", "T")}, nil)
	return b
}

// All returns every ground builtin type (no Array, which is a constructor),
// in a fixed order.
func (b *Builtins) All() []Type {
	return []Type{
		b.Number, b.Byte, b.Short, b.Int, b.Long, b.Float, b.Double,
		b.Boolean, b.Char, b.String,
	}
}

// Defaultable returns builtins that have constant literals in the IR
// (val(t) in Fig. 4a); Unit and Number are excluded because no literal
// denotes them directly.
func (b *Builtins) Defaultable() []Type {
	return []Type{
		b.Byte, b.Short, b.Int, b.Long, b.Float, b.Double,
		b.Boolean, b.Char, b.String,
	}
}

// ByName resolves a builtin ground type by its neutral name, or nil.
func (b *Builtins) ByName(name string) Type {
	switch name {
	case "Any":
		return b.Any
	case "Nothing":
		return b.Nothing
	case "Number":
		return b.Number
	case "Byte":
		return b.Byte
	case "Short":
		return b.Short
	case "Int":
		return b.Int
	case "Long":
		return b.Long
	case "Float":
		return b.Float
	case "Double":
		return b.Double
	case "Boolean":
		return b.Boolean
	case "Char":
		return b.Char
	case "String":
		return b.String
	case "Unit":
		return b.Unit
	}
	return nil
}

// IsNumeric reports whether t is one of the numeric builtins (including
// Number itself).
func (b *Builtins) IsNumeric(t Type) bool {
	s, ok := t.(*Simple)
	if !ok || !s.Builtin {
		return false
	}
	switch s.TypeName {
	case "Number", "Byte", "Short", "Int", "Long", "Float", "Double":
		return true
	}
	return false
}
