package types

import (
	"sync"
	"sync/atomic"
)

// Bounded memo caches for the two hottest relations in the kernel:
// IsSubtype and Supertype-of-an-application. Every generated or mutated
// program pays these thousands of times (TEM's Algorithm 2 re-checks whole
// candidate combinations), and the relations are pure functions of their
// canonical fingerprints, so memoization is invisible to results: a cache
// hit returns exactly the value the recursive walk would have computed.
// There is consequently no invalidation — entries are never wrong, only
// evicted for space.
//
// The caches are process-global (pipeline workers share types.Builtins and
// the generated constructors) and sharded 64 ways to keep lock contention
// off the hot path. Each shard is bounded; when full it is reset
// wholesale, which keeps memory constant without LRU bookkeeping.
// Lookups build the key into a pooled scratch buffer and index the map
// with a non-allocating string conversion; only inserts materialize the
// key.
//
// SetCaching(false) routes every query through the uncached walk — the
// determinism suites assert campaign reports are bit-for-bit identical
// either way at 1 and 8 workers.

const (
	cacheShardCount   = 64
	cacheShardMaxKeys = 4096
	// pairSep separates the two fingerprints of a relation key; it differs
	// from fpSep so (a, bc) and (ab, c) cannot collide.
	pairSep = 0x1e
)

type relShard struct {
	mu sync.Mutex
	m  map[string]bool
}

type typeShard struct {
	mu sync.Mutex
	m  map[string]Type
}

var (
	cachingDisabled atomic.Bool // zero value: caching on
	subtypeCache    [cacheShardCount]relShard
	supertypeCache  [cacheShardCount]typeShard

	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
)

var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// CachingEnabled reports whether the memo caches are consulted.
func CachingEnabled() bool { return !cachingDisabled.Load() }

// SetCaching toggles the memo caches (on by default) and returns the
// previous setting. Disabling also drops all cached entries so a
// subsequent enable starts cold; results never depend on the setting,
// only speed does.
func SetCaching(enabled bool) (prev bool) {
	prev = !cachingDisabled.Swap(!enabled)
	if !enabled {
		ResetCaches()
	}
	return prev
}

// ResetCaches drops every memoized entry and zeroes the hit/miss counters.
func ResetCaches() {
	for i := range subtypeCache {
		s := &subtypeCache[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
	for i := range supertypeCache {
		s := &supertypeCache[i]
		s.mu.Lock()
		s.m = nil
		s.mu.Unlock()
	}
	cacheHits.Store(0)
	cacheMisses.Store(0)
}

// CacheStats returns the cumulative hit/miss counts of both caches since
// the last reset. Used by tests to prove the cache is exercised; campaign
// results never depend on them.
func CacheStats() (hits, misses uint64) {
	return cacheHits.Load(), cacheMisses.Load()
}

// cachedSubtype consults the subtype cache for the pair key in buf.
func cachedSubtype(key []byte) (val, ok bool) {
	s := &subtypeCache[fnv1a(key)%cacheShardCount]
	s.mu.Lock()
	val, ok = s.m[string(key)]
	s.mu.Unlock()
	if ok {
		cacheHits.Add(1)
	} else {
		cacheMisses.Add(1)
	}
	return val, ok
}

func storeSubtype(key []byte, val bool) {
	s := &subtypeCache[fnv1a(key)%cacheShardCount]
	s.mu.Lock()
	if s.m == nil || len(s.m) >= cacheShardMaxKeys {
		s.m = make(map[string]bool, 64)
	}
	s.m[string(key)] = val
	s.mu.Unlock()
}

func cachedSupertype(key []byte) (Type, bool) {
	s := &supertypeCache[fnv1a(key)%cacheShardCount]
	s.mu.Lock()
	t, ok := s.m[string(key)]
	s.mu.Unlock()
	if ok {
		cacheHits.Add(1)
	} else {
		cacheMisses.Add(1)
	}
	return t, ok
}

func storeSupertype(key []byte, t Type) {
	s := &supertypeCache[fnv1a(key)%cacheShardCount]
	s.mu.Lock()
	if s.m == nil || len(s.m) >= cacheShardMaxKeys {
		s.m = make(map[string]Type, 64)
	}
	s.m[string(key)] = t
	s.mu.Unlock()
}
