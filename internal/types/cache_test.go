package types

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// withColdCaches runs f with the memo caches enabled but empty, restoring
// the previous toggle state and dropping test entries afterwards.
func withColdCaches(t *testing.T, f func()) {
	t.Helper()
	prev := SetCaching(true)
	ResetCaches()
	defer func() {
		ResetCaches()
		SetCaching(prev)
	}()
	f()
}

func TestCachingToggle(t *testing.T) {
	prev := SetCaching(true)
	defer SetCaching(prev)

	if !CachingEnabled() {
		t.Fatal("caching should be enabled after SetCaching(true)")
	}
	if got := SetCaching(false); !got {
		t.Fatal("SetCaching(false) should report previous=true")
	}
	if CachingEnabled() {
		t.Fatal("caching should be disabled after SetCaching(false)")
	}
	if got := SetCaching(true); got {
		t.Fatal("SetCaching(true) should report previous=false")
	}
}

func TestCacheStatsCountHitsAndMisses(t *testing.T) {
	withColdCaches(t, func() {
		b := NewBuiltins()
		aT := NewParameter("A", "T")
		ctorA := NewConstructor("A", []*Parameter{aT}, nil)
		bT := NewParameter("B", "T")
		ctorB := NewConstructor("B", []*Parameter{bT}, ctorA.Apply(bT))
		sub := ctorB.Apply(b.Int)
		sup := ctorA.Apply(&Projection{Var: Covariant, Bound: b.Number})
		// The pair memo only accepts queries whose fingerprints are
		// already paid for; warm them the way repeated climbs would.
		Fingerprint(sub)
		Fingerprint(sup)

		if !IsSubtype(sub, sup) {
			t.Fatal("B<Int> <: A<out Number> expected")
		}
		_, misses := CacheStats()
		if misses == 0 {
			t.Fatal("first query should miss the cache")
		}
		hits0, _ := CacheStats()
		for i := 0; i < 10; i++ {
			IsSubtype(sub, sup)
		}
		hits, _ := CacheStats()
		if hits < hits0+10 {
			t.Fatalf("repeat queries should hit the cache: hits %d -> %d", hits0, hits)
		}
	})
}

func TestCacheDisabledBypassesStats(t *testing.T) {
	prev := SetCaching(false)
	defer SetCaching(prev)
	ResetCaches()

	b := NewBuiltins()
	if !IsSubtype(b.Int, b.Number) {
		t.Fatal("Int <: Number expected")
	}
	hits, misses := CacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("disabled cache should not be consulted: hits=%d misses=%d", hits, misses)
	}
}

// TestCacheBounded floods the caches with more distinct pairs than they can
// hold and checks queries stay correct (shards reset wholesale; entries are
// evicted, never wrong).
func TestCacheBounded(t *testing.T) {
	withColdCaches(t, func() {
		b := NewBuiltins()
		aT := NewParameter("A", "T")
		ctorA := NewConstructor("A", []*Parameter{aT}, nil)
		bT := NewParameter("B", "T")
		ctorB := NewConstructor("B", []*Parameter{bT}, ctorA.Apply(bT))
		sub := ctorB.Apply(b.Int)
		sup := ctorA.Apply(&Projection{Var: Covariant, Bound: b.Number})
		Fingerprint(sub)
		Fingerprint(sup)
		if !IsSubtype(sub, sup) {
			t.Fatal("B<Int> <: A<out Number> expected")
		}

		total := cacheShardCount*cacheShardMaxKeys/8 + 10_000
		for i := 0; i < total; i++ {
			// Distinct cross-constructor applications flood both the
			// supertype and the relation shards; fingerprints are warmed
			// so the pair memo accepts each query.
			flood := ctorB.Apply(NewSimple(fmt.Sprintf("Flood%d", i), b.Number))
			Fingerprint(flood)
			if IsSubtype(flood, b.Number) {
				t.Fatalf("B<Flood%d> <: Number not expected", i)
			}
		}
		// After the flood, evicted answers must still be recomputed
		// correctly (entries are dropped, never wrong).
		if !IsSubtype(sub, sup) {
			t.Fatal("relations corrupted after cache churn")
		}
		if !IsSubtype(b.Int, b.Number) || IsSubtype(b.Number, b.Int) {
			t.Fatal("basic relations corrupted after cache churn")
		}
	})
}

// TestConcurrentCacheAccess hammers the memoized relations from many
// goroutines over a shared universe; run under -race this proves the
// shards, the fingerprint memo boxes, and the key pool are thread-safe.
func TestConcurrentCacheAccess(t *testing.T) {
	withColdCaches(t, func() {
		g := newTypeGen()
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				r := rand.New(rand.NewSource(seed))
				for i := 0; i < 2000; i++ {
					t1 := g.random(r, 3)
					t2 := g.random(r, 3)
					IsSubtype(t1, t2)
					Supertype(t1)
					Unify(t1, t2)
				}
			}(int64(w))
		}
		wg.Wait()
	})
}

// TestCachedUncachedAgree is the central invisibility property: over random
// type pairs, IsSubtype answers identically with the memo caches on and
// off.
func TestCachedUncachedAgree(t *testing.T) {
	g := newTypeGen()
	r := rand.New(rand.NewSource(77))
	prev := CachingEnabled()
	defer SetCaching(prev)

	for i := 0; i < 5000; i++ {
		t1 := g.random(r, 4)
		t2 := g.random(r, 4)

		SetCaching(true)
		cached := IsSubtype(t1, t2)
		cachedAgain := IsSubtype(t1, t2) // second query served from cache
		SetCaching(false)
		uncached := IsSubtype(t1, t2)

		if cached != uncached || cachedAgain != uncached {
			t.Fatalf("cache changed the relation for %s <: %s: cached=%v again=%v uncached=%v",
				t1, t2, cached, cachedAgain, uncached)
		}
	}
}

// TestFingerprintSoundness checks the property the caches rely on: equal
// fingerprints imply Equal types, and distinct hierarchies sharing a name
// (as successive generated programs produce) get distinct fingerprints.
func TestFingerprintSoundness(t *testing.T) {
	b := NewBuiltins()
	g := newTypeGen()
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		t1 := g.random(r, 3)
		t2 := g.random(r, 3)
		if Fingerprint(t1) == Fingerprint(t2) && !t1.Equal(t2) {
			t.Fatalf("fingerprint collision: %s vs %s", t1, t2)
		}
		if t1.Equal(t2) && Fingerprint(t1) != Fingerprint(t2) {
			t.Fatalf("equal types, distinct fingerprints: %s vs %s", t1, t2)
		}
	}

	// Same name, different declared hierarchy — the cross-program reuse
	// case. Fingerprints must differ or the process-global cache would
	// poison later programs.
	cls1a := NewSimple("Cls1", b.Number)
	cls1b := NewSimple("Cls1", b.String)
	if Fingerprint(cls1a) == Fingerprint(cls1b) {
		t.Fatal("same-name types with different supertypes must fingerprint differently")
	}

	// Same-name constructors with different variance must differ too.
	pa := NewParameter("C", "T")
	pb := &Parameter{Owner: "C", ParamName: "T", Var: Covariant}
	ca := NewConstructor("C", []*Parameter{pa}, nil)
	cb := NewConstructor("C", []*Parameter{pb}, nil)
	if Fingerprint(ca.Apply(b.Int)) == Fingerprint(cb.Apply(b.Int)) {
		t.Fatal("applications of same-name constructors with different variance must fingerprint differently")
	}
}

// TestFingerprintCyclicHierarchy checks the walk terminates on (malformed)
// cyclic hierarchies and on F-bounded parameters, and that the F-bounded
// case still reaches a fixed point.
func TestFingerprintCyclicHierarchy(t *testing.T) {
	a := NewSimple("A", nil)
	b := NewSimple("B", a)
	a.Super = b // deliberate cycle: A : B, B : A

	fp1 := Fingerprint(a)
	fp2 := Fingerprint(a)
	if fp1 == "" || fp1 != fp2 {
		t.Fatalf("cyclic fingerprint should be stable and nonempty: %q vs %q", fp1, fp2)
	}
	if Fingerprint(a) == Fingerprint(b) {
		t.Fatal("the two halves of the cycle are distinct types")
	}

	// F-bounded parameter: T : Comparable<T>.
	cmpT := NewParameter("Comparable", "T")
	comparable := NewConstructor("Comparable", []*Parameter{cmpT}, nil)
	tp := NewParameter("m", "T")
	tp.Bound = comparable.Apply(tp)
	if Fingerprint(tp) != Fingerprint(tp) {
		t.Fatal("F-bounded fingerprint should be stable")
	}
}

// TestSuperChainCyclicEndsInTop is the regression test for the capped
// SuperChain path: even a cyclic hierarchy yields a chain terminated by ⊤,
// preserving the invariant lub2 and UnifyPrime iterate on.
func TestSuperChainCyclicEndsInTop(t *testing.T) {
	a := NewSimple("A", nil)
	b := NewSimple("B", a)
	a.Super = b // cycle

	chain := SuperChain(a)
	if len(chain) == 0 {
		t.Fatal("empty chain")
	}
	if _, ok := chain[len(chain)-1].(Top); !ok {
		t.Fatalf("capped SuperChain must end in Top, got %s", chain[len(chain)-1])
	}

	// Lub over the cyclic hierarchy must terminate (and fall back to ⊤).
	got := Lub(a, NewSimple("C", nil))
	if _, ok := got.(Top); !ok {
		t.Fatalf("Lub over unrelated cyclic hierarchy should be Top, got %s", got)
	}
}

// TestMalformedAppArity checks that applications whose argument count does
// not match their constructor — as partial erasure can produce — fail soft
// in every entry point instead of panicking.
func TestMalformedAppArity(t *testing.T) {
	b := NewBuiltins()
	p1 := NewParameter("Pair", "K")
	p2 := NewParameter("Pair", "V")
	sup := NewConstructor("Sup", []*Parameter{NewParameter("Sup", "T")}, nil)
	pair := NewConstructor("Pair", []*Parameter{p1, p2}, sup.Apply(p1))

	malformed := &App{Ctor: pair, Args: []Type{b.Int}} // one arg, two params
	wellFormed := pair.Apply(b.Int, b.String)

	if got := Supertype(malformed); got == nil {
		t.Fatal("Supertype(malformed) must not be nil")
	} else if _, ok := got.(Top); !ok {
		t.Fatalf("Supertype(malformed) should fail soft to Top, got %s", got)
	}

	if IsSubtype(malformed, wellFormed) {
		t.Fatal("malformed app must not be a subtype of a well-formed one")
	}
	if IsSubtype(wellFormed, malformed) {
		t.Fatal("well-formed app must not be a subtype of a malformed one")
	}
	if IsSubtype(malformed, sup.Apply(b.Int)) {
		t.Fatal("malformed app must not climb its hierarchy")
	}

	if sigma := Unify(malformed, wellFormed); sigma != nil {
		t.Fatal("Unify(malformed, ...) should fail, not panic")
	}
	if sigma := Unify(wellFormed, malformed); sigma != nil {
		t.Fatal("Unify(..., malformed) should fail, not panic")
	}
	// UnifyPrime reports "no dependency" as an empty substitution; the
	// malformed operand must simply not panic the pointwise loops.
	if sigma := UnifyPrime(malformed, wellFormed); sigma == nil {
		t.Fatal("UnifyPrime never returns nil")
	}
	if sigma := UnifyPrime(wellFormed, malformed); sigma == nil {
		t.Fatal("UnifyPrime never returns nil")
	}

	// Lub must also survive a malformed operand.
	_ = Lub(malformed, wellFormed)
}

// TestHasFreeParametersAgreesWithFreeParameters pins the fast groundness
// check to the reference implementation.
func TestHasFreeParametersAgreesWithFreeParameters(t *testing.T) {
	g := newTypeGen()
	r := rand.New(rand.NewSource(123))
	for i := 0; i < 3000; i++ {
		tt := g.random(r, 4)
		if HasFreeParameters(tt) != (len(FreeParameters(tt)) > 0) {
			t.Fatalf("HasFreeParameters disagrees with FreeParameters for %s", tt)
		}
	}
	if HasFreeParameters(nil) {
		t.Fatal("nil type has no free parameters")
	}
}
