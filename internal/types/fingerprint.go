package types

import (
	"strconv"
	"sync/atomic"
)

// Canonical type fingerprints.
//
// Fingerprint(t) is a compact byte string capturing everything the
// subtyping and supertype relations can observe about t: variant tags,
// nominal names, the full declared supertype chain, type-parameter IDs and
// bounds, constructor arities and declaration-site variances, and argument
// structure. Two types with equal fingerprints are structurally
// indistinguishable to IsSubtype/Supertype, which is what makes the memo
// caches in cache.go sound — nominal names alone would not be, because
// generated programs reuse class names (Cls1, Cls2, ...) with different
// hierarchies across one process-wide campaign.
//
// Fingerprint equality implies Equal (the fingerprint embeds every field
// Equal compares); the converse holds on any single well-formed program,
// where nominal names are unique.
//
// Declarations are immutable once built, so every nominal node (Simple,
// Parameter, Constructor, App) memoizes its own fingerprint in an atomic
// box the first time it is walked: steady-state fingerprinting of a
// declared type is a single pointer load and byte copy, and a freshly
// substituted application only walks its own spine, appending the cached
// fingerprints of its leaves. The memo is skipped for (malformed, test
// -only) cyclic hierarchies, whose back-reference markers are relative to
// the walk root and therefore not context-free.
//
// Each variant is tagged with a distinct leading byte and fields are
// separated with 0x1f (ASCII unit separator, which cannot occur in
// generated identifiers), so fingerprints of distinct shapes cannot
// collide by concatenation.

const fpSep = 0x1f

// fpBox lazily memoizes a node's fingerprint. Concurrent first walks may
// race to store; they store equal values, and the atomic pointer keeps the
// race benign under -race.
type fpBox struct {
	v atomic.Pointer[string]
}

// ready reports whether the box already holds a memoized fingerprint.
func (b *fpBox) ready() bool { return b.v.Load() != nil }

// fingerprintReady reports whether t's fingerprint is already memoized, so
// appending it is a pointer load and a byte copy rather than a walk.
// Extremal types are single tag bytes and trivially ready; non-nominal
// compound shapes (projections, function types, intersections) carry no
// memo box and report false.
func fingerprintReady(t Type) bool {
	switch tt := t.(type) {
	case Top, Bottom:
		return true
	case *Simple:
		return tt.fp.ready()
	case *Parameter:
		return tt.fp.ready()
	case *Constructor:
		return tt.fp.ready()
	case *App:
		return tt.fp.ready()
	}
	return false
}

// AppendFingerprint appends t's canonical fingerprint to dst and returns
// the extended slice. A nil type contributes a distinct "nil" tag.
func AppendFingerprint(dst []byte, t Type) []byte {
	var st fpWalk
	return st.walk(dst, t)
}

// Fingerprint returns t's canonical fingerprint as a string.
func Fingerprint(t Type) string {
	return string(AppendFingerprint(make([]byte, 0, 64), t))
}

// Hash returns a 64-bit FNV-1a hash of t's canonical fingerprint, for
// callers that want a fixed-width key (e.g. shard selection). Hash equality
// does not imply type equality; exact callers use Fingerprint.
func Hash(t Type) uint64 {
	var buf [192]byte
	b := AppendFingerprint(buf[:0], t)
	return fnv1a(b)
}

// fpWalk tracks the declarations on the current walk stack so cyclic
// hierarchies terminate, and counts emitted back-references so memoization
// can be suppressed for the cyclic case. The stack stays nil for the
// overwhelmingly common acyclic walk.
type fpWalk struct {
	seen     []any // *Simple, *Constructor, or *Parameter being walked
	backrefs int
}

func (st *fpWalk) entered(node any) bool {
	for _, s := range st.seen {
		if s == node {
			return true
		}
	}
	return false
}

// memoized appends box's cached fingerprint if present.
func memoized(dst []byte, box *fpBox) ([]byte, bool) {
	if s := box.v.Load(); s != nil {
		return append(dst, *s...), true
	}
	return dst, false
}

// memoize stores dst[start:] as box's fingerprint unless the subtree walk
// emitted a back-reference (its output would then depend on the walk
// root).
func (st *fpWalk) memoize(box *fpBox, dst []byte, start, backrefs0 int) {
	if st.backrefs != backrefs0 {
		return
	}
	s := string(dst[start:])
	box.v.Store(&s)
}

func (st *fpWalk) walk(dst []byte, t Type) []byte {
	if t == nil {
		return append(dst, '0')
	}
	switch tt := t.(type) {
	case Top:
		return append(dst, 'T')
	case Bottom:
		return append(dst, 'B')
	case *Simple:
		if out, ok := memoized(dst, &tt.fp); ok {
			return out
		}
		start, b0 := len(dst), st.backrefs
		dst = append(dst, 'S')
		dst = append(dst, tt.TypeName...)
		if tt.Super != nil {
			if st.entered(tt) {
				st.backrefs++
				return append(dst, '@') // cyclic hierarchy: back-reference
			}
			st.seen = append(st.seen, tt)
			dst = append(dst, ':')
			dst = st.walk(dst, tt.Super)
			st.seen = st.seen[:len(st.seen)-1]
		}
		st.memoize(&tt.fp, dst, start, b0)
		return dst
	case *Parameter:
		if out, ok := memoized(dst, &tt.fp); ok {
			return out
		}
		start, b0 := len(dst), st.backrefs
		dst = append(dst, 'P')
		dst = append(dst, tt.Owner...)
		dst = append(dst, '.')
		dst = append(dst, tt.ParamName...)
		if tt.Bound != nil {
			if st.entered(tt) {
				st.backrefs++
				return append(dst, '@') // F-bounded: T : Comparable<T>
			}
			st.seen = append(st.seen, tt)
			dst = append(dst, ':')
			dst = st.walk(dst, tt.Bound)
			st.seen = st.seen[:len(st.seen)-1]
		}
		st.memoize(&tt.fp, dst, start, b0)
		return dst
	case *Constructor:
		return st.walkCtor(dst, tt)
	case *App:
		if out, ok := memoized(dst, &tt.fp); ok {
			return out
		}
		start, b0 := len(dst), st.backrefs
		dst = append(dst, 'A')
		dst = st.walkCtor(dst, tt.Ctor)
		dst = append(dst, '(')
		for i, a := range tt.Args {
			if i > 0 {
				dst = append(dst, fpSep)
			}
			dst = st.walk(dst, a)
		}
		dst = append(dst, ')')
		st.memoize(&tt.fp, dst, start, b0)
		return dst
	case *Projection:
		if tt.Var == Covariant {
			dst = append(dst, 'o')
		} else {
			dst = append(dst, 'i')
		}
		return st.walk(dst, tt.Bound)
	case *Func:
		dst = append(dst, 'F', '(')
		for i, p := range tt.Params {
			if i > 0 {
				dst = append(dst, fpSep)
			}
			dst = st.walk(dst, p)
		}
		dst = append(dst, ')')
		return st.walk(dst, tt.Ret)
	case *Intersection:
		dst = append(dst, 'X', '(')
		for i, m := range tt.Members {
			if i > 0 {
				dst = append(dst, fpSep)
			}
			dst = st.walk(dst, m)
		}
		return append(dst, ')')
	}
	return append(dst, '?')
}

// walkCtor fingerprints a constructor: name, arity, per-parameter
// declaration-site variances, and the declared supertype (which may
// mention the constructor's own parameters).
func (st *fpWalk) walkCtor(dst []byte, c *Constructor) []byte {
	if out, ok := memoized(dst, &c.fp); ok {
		return out
	}
	start, b0 := len(dst), st.backrefs
	dst = append(dst, 'C')
	dst = append(dst, c.TypeName...)
	dst = append(dst, fpSep)
	dst = strconv.AppendInt(dst, int64(len(c.Params)), 10)
	for _, p := range c.Params {
		switch p.Var {
		case Covariant:
			dst = append(dst, 'o')
		case Contravariant:
			dst = append(dst, 'i')
		default:
			dst = append(dst, '=')
		}
	}
	if c.Super != nil {
		if st.entered(c) {
			st.backrefs++
			return append(dst, '@')
		}
		st.seen = append(st.seen, c)
		dst = append(dst, ':')
		dst = st.walk(dst, c.Super)
		st.seen = st.seen[:len(st.seen)-1]
	}
	st.memoize(&c.fp, dst, start, b0)
	return dst
}

func fnv1a(b []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
