package types

import (
	"fmt"
	"testing"

	"repro/internal/governor"
)

// buildChainApp builds `class N0<T>; class Ni<T> : N(i-1)<T>` and returns
// the application N_levels<Int>. Unifying two such applications from
// unrelated families is the system's genuine exponential: unifyInto
// backtracks over both supertype chains (climb t1, then climb t2), so a
// failing unification explores binomial(m+n, m) climb interleavings.
func buildChainApp(family string, levels int) *App {
	t0 := NewParameter(family+"0", "T")
	prev := NewConstructor(family+"0", []*Parameter{t0}, nil)
	for i := 1; i <= levels; i++ {
		ti := NewParameter(fmt.Sprintf("%s%d", family, i), "T")
		prev = NewConstructor(fmt.Sprintf("%s%d", family, i), []*Parameter{ti}, prev.Apply(ti))
	}
	return prev.Apply(NewSimple("Int", nil))
}

// meteredUnify runs UnifyB under a fresh budget and returns what the
// budget saw: steps spent and the bailout, if any.
func meteredUnify(t *testing.T, fuel int64, t1, t2 Type) (spent int64, bail *governor.Bailout) {
	t.Helper()
	b := governor.New(fuel, 0)
	func() {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if bail, ok = governor.AsBailout(r); !ok {
					panic(r)
				}
			}
		}()
		UnifyB(b, t1, t2)
	}()
	return b.Spent(), bail
}

func TestMeteredUnifyExhaustsOnBacktrackingBlowup(t *testing.T) {
	// ~binomial(50,25) ≈ 1e14 climb interleavings: unmetered this would
	// run for days; metered it must die after exactly fuel+1 steps.
	a := buildChainApp("GovA", 25)
	b := buildChainApp("GovB", 25)
	spent, bail := meteredUnify(t, 50_000, a, b)
	if bail == nil || bail.Reason != governor.FuelExhausted {
		t.Fatalf("unify backtracking blowup must exhaust 50k fuel, got bail=%+v spent=%d", bail, spent)
	}
}

func TestMeteredUnifyCompletesWithinBudget(t *testing.T) {
	// Short chains keep the backtracking tree small (binomial(12,6)=924).
	a := buildChainApp("GovC", 6)
	b := buildChainApp("GovD", 6)
	bud := governor.New(1_000_000, 0)
	UnifyB(bud, a, b)
	if bud.Spent() == 0 {
		t.Fatal("metered unify charged nothing")
	}
}

// TestMeteredFuelIsCacheIndependent is the determinism keystone: the steps
// a guarded walk charges — and therefore the exhaustion point — must not
// depend on the process-global memo caches, which other programs may have
// warmed. Guarded budgets bypass the caches entirely, so cold caches, warm
// caches, and disabled caches must all see the identical count.
func TestMeteredFuelIsCacheIndependent(t *testing.T) {
	a := buildChainApp("GovF", 25)
	b := buildChainApp("GovG", 25)
	const fuel = 50_000

	var spents []int64
	record := func(label string) {
		spent, bail := meteredUnify(t, fuel, a, b)
		if bail == nil {
			t.Fatalf("%s: expected exhaustion", label)
		}
		if bail.Spent != spent {
			t.Fatalf("%s: bailout reports %d spent, budget %d", label, bail.Spent, spent)
		}
		spents = append(spents, spent)
	}

	withColdCaches(t, func() {
		record("cold caches")
		// Warm the caches the way a prior program's unmetered compile
		// would: fingerprints plus unmetered relation queries over the
		// same operands.
		Fingerprint(a)
		Fingerprint(b)
		IsSubtype(a, b)
		Supertype(a)
		record("warm caches")
	})
	prev := SetCaching(false)
	record("caching disabled")
	SetCaching(prev)

	for i, s := range spents[1:] {
		if s != spents[0] {
			t.Fatalf("run %d spent %d steps, run 0 spent %d — metered fuel leaked cache state", i+1, s, spents[0])
		}
	}
}

func TestMeteredDepthGuardOnDeepNesting(t *testing.T) {
	box := NewConstructor("Box", []*Parameter{NewParameter("Box", "T")}, nil)
	p := NewParameter("f", "T")
	var nested Type = p
	for i := 0; i < 2*governor.DefaultMaxDepth; i++ {
		nested = box.Apply(nested)
	}
	sigma := NewSubstitution()
	sigma.Bind(p, NewSimple("Int", nil))

	b := governor.New(1<<40, 0) // fuel-guarded => default depth guard
	var bail *governor.Bailout
	func() {
		defer func() {
			if r := recover(); r != nil {
				var ok bool
				if bail, ok = governor.AsBailout(r); !ok {
					panic(r)
				}
			}
		}()
		sigma.ApplyB(b, nested)
	}()
	if bail == nil || bail.Reason != governor.DepthExceeded {
		t.Fatalf("want DepthExceeded on %d-deep nesting, got %+v", 2*governor.DefaultMaxDepth, bail)
	}
}

// Unmetered budgets (fuel 0, depth 0) must leave results and caching
// behavior untouched — they only count.
func TestUnguardedBudgetMatchesPlainRelation(t *testing.T) {
	sub := buildChainApp("GovH", 6)
	sup := buildChainApp("GovH", 3) // same family: prefix relation holds
	b := governor.New(0, 0)
	if got, want := IsSubtypeB(b, sub, sup), IsSubtype(sub, sup); got != want {
		t.Fatalf("unguarded metered relation %v, plain relation %v", got, want)
	}
	if b.Guarded() {
		t.Fatal("fuel 0 / depth 0 budget must not be Guarded")
	}
	if b.Spent() == 0 {
		t.Fatal("unguarded budget should still count steps")
	}
}

func TestSuperChainTruncationObservable(t *testing.T) {
	// A self-cyclic hierarchy trips the 64-link cap.
	cyc := &Simple{TypeName: "Cyc"}
	cyc.Super = cyc

	var fired int
	SetSuperChainTruncationHook(func() { fired++ })
	defer SetSuperChainTruncationHook(nil)

	before := SuperChainTruncations()
	chain := SuperChain(cyc)
	if _, ok := chain[len(chain)-1].(Top); !ok {
		t.Fatal("capped chain must still end in Top")
	}
	if got := SuperChainTruncations() - before; got != 1 {
		t.Fatalf("truncation counter advanced by %d, want 1", got)
	}
	if fired != 1 {
		t.Fatalf("truncation hook fired %d times, want 1", fired)
	}

	// A healthy chain must not count.
	SuperChain(NewSimple("Leaf", NewSimple("Root", nil)))
	if got := SuperChainTruncations() - before; got != 1 {
		t.Fatalf("healthy chain advanced the truncation counter (total %d)", got)
	}
}
