package types

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// typeGen generates random types over a small fixed universe for
// property-based testing: builtins, two hierarchy-related constructors,
// type parameters (bounded and unbounded), projections, and function
// types, nested up to a bounded depth.
type typeGen struct {
	b     *Builtins
	ctorA *Constructor
	ctorB *Constructor
	tps   []*Parameter
}

func newTypeGen() *typeGen {
	b := NewBuiltins()
	aT := NewParameter("A", "T")
	ctorA := NewConstructor("A", []*Parameter{aT}, nil)
	bT := NewParameter("B", "T")
	ctorB := NewConstructor("B", []*Parameter{bT}, ctorA.Apply(bT))
	return &typeGen{
		b:     b,
		ctorA: ctorA,
		ctorB: ctorB,
		tps: []*Parameter{
			NewParameter("m", "X"),
			{Owner: "m", ParamName: "Y", Bound: b.Number},
		},
	}
}

func (g *typeGen) random(r *rand.Rand, depth int) Type {
	if depth <= 0 {
		ground := append([]Type{Top{}, Bottom{}}, g.b.All()...)
		return ground[r.Intn(len(ground))]
	}
	switch r.Intn(8) {
	case 0:
		return g.ctorA.Apply(g.random(r, depth-1))
	case 1:
		return g.ctorB.Apply(g.random(r, depth-1))
	case 2:
		return g.tps[r.Intn(len(g.tps))]
	case 3:
		inner := g.random(r, depth-1)
		if _, isProj := inner.(*Projection); isProj {
			return inner
		}
		v := Covariant
		if r.Intn(2) == 0 {
			v = Contravariant
		}
		return g.ctorA.Apply(&Projection{Var: v, Bound: inner})
	case 4:
		n := r.Intn(3)
		f := &Func{Ret: g.random(r, depth-1)}
		for i := 0; i < n; i++ {
			f.Params = append(f.Params, g.random(r, depth-1))
		}
		return f
	default:
		ground := append([]Type{Top{}}, g.b.All()...)
		return ground[r.Intn(len(ground))]
	}
}

// randomTriple satisfies quick.Generator-style use via Values.
func tripleValues(g *typeGen) func([]reflect.Value, *rand.Rand) {
	return func(vs []reflect.Value, r *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(g.random(r, 3))
		}
	}
}

func TestQuickSubtypingReflexive(t *testing.T) {
	g := newTypeGen()
	f := func(a Type) bool {
		if _, isProj := a.(*Projection); isProj {
			return true // projections are not first-class types
		}
		return IsSubtype(a, a)
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtypingExtremes(t *testing.T) {
	g := newTypeGen()
	f := func(a Type) bool {
		if _, isProj := a.(*Projection); isProj {
			return true
		}
		return IsSubtype(a, Top{}) && IsSubtype(Bottom{}, a)
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickSubtypingTransitive(t *testing.T) {
	g := newTypeGen()
	f := func(a, b, c Type) bool {
		for _, x := range []Type{a, b, c} {
			if _, isProj := x.(*Projection); isProj {
				return true
			}
		}
		if IsSubtype(a, b) && IsSubtype(b, c) {
			return IsSubtype(a, c)
		}
		return true
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Lub is an upper bound of both operands.
func TestQuickLubIsUpperBound(t *testing.T) {
	g := newTypeGen()
	f := func(a, b Type) bool {
		for _, x := range []Type{a, b} {
			if _, isProj := x.(*Projection); isProj {
				return true
			}
		}
		j := Lub(a, b)
		return IsSubtype(a, j) && IsSubtype(b, j)
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 1500}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Lub is commutative and idempotent.
func TestQuickLubLaws(t *testing.T) {
	g := newTypeGen()
	f := func(a, b Type) bool {
		for _, x := range []Type{a, b} {
			if _, isProj := x.(*Projection); isProj {
				return true
			}
		}
		if !Lub(a, a).Equal(a) {
			return false
		}
		return Lub(a, b).Equal(Lub(b, a))
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 1000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Substitution is the identity on types not mentioning the parameter.
func TestQuickSubstitutionIdentity(t *testing.T) {
	g := newTypeGen()
	ghost := NewParameter("ghost", "Z")
	f := func(a Type) bool {
		s := NewSubstitution()
		s.Bind(ghost, g.b.Int)
		return s.Apply(a).Equal(a)
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 800}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Applying [α ↦ t] removes α from the free parameters.
func TestQuickSubstitutionEliminates(t *testing.T) {
	g := newTypeGen()
	f := func(a Type) bool {
		for _, p := range g.tps {
			s := NewSubstitution()
			s.Bind(p, g.b.String)
			if ContainsParameter(s.Apply(a), p) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 800}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Unification soundness: when Unify(t1, t2) succeeds on projection-free
// inputs whose free parameters all got bound, the sides are
// subtype-related (σ·t1 <: t2 for resolution use, or t2 <: σ·t1 for
// argument-driven inference use; see groundVerified).
func TestQuickUnifySound(t *testing.T) {
	g := newTypeGen()
	hasProj := func(t Type) bool {
		found := false
		var walk func(Type)
		walk = func(t Type) {
			switch tt := t.(type) {
			case *Projection:
				found = true
			case *App:
				for _, a := range tt.Args {
					walk(a)
				}
			case *Func:
				for _, a := range tt.Params {
					walk(a)
				}
				walk(tt.Ret)
			}
		}
		walk(t)
		return found
	}
	f := func(t1, t2 Type) bool {
		if hasProj(t1) || hasProj(t2) || len(FreeParameters(t2)) > 0 {
			return true
		}
		sigma := Unify(t1, t2)
		if sigma == nil {
			return true
		}
		inst := sigma.Apply(t1)
		if len(FreeParameters(inst)) > 0 {
			return true // partially bound: callers re-check
		}
		return IsSubtype(inst, t2) || IsSubtype(t2, inst)
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 3000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// String rendering is stable and Equal is consistent with it on this
// universe (no two distinct types render identically).
func TestQuickEqualConsistentWithString(t *testing.T) {
	g := newTypeGen()
	f := func(a, b Type) bool {
		if a.Equal(b) != (a.String() == b.String()) {
			return false
		}
		return true
	}
	cfg := &quick.Config{Values: tripleValues(g), MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
