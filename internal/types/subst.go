package types

import (
	"sort"
	"strings"

	"repro/internal/governor"
)

// Substitution is a finite map [α ↦ t] from type parameters to types
// (Definition 3.1). Keys are parameter IDs; Params retains the *Parameter
// for each key so substitutions can be enumerated.
type Substitution struct {
	bindings map[string]Type
	params   map[string]*Parameter
}

// NewSubstitution returns an empty substitution.
func NewSubstitution() *Substitution {
	return &Substitution{
		bindings: map[string]Type{},
		params:   map[string]*Parameter{},
	}
}

// Bind records [p ↦ t]. Rebinding the same parameter to an equal type is a
// no-op; rebinding to a different type overwrites (callers that need
// conflict detection use Merge).
func (s *Substitution) Bind(p *Parameter, t Type) {
	s.bindings[p.ID()] = t
	s.params[p.ID()] = p
}

// Lookup returns the binding for p, if any.
func (s *Substitution) Lookup(p *Parameter) (Type, bool) {
	t, ok := s.bindings[p.ID()]
	return t, ok
}

// Len returns the number of bound parameters.
func (s *Substitution) Len() int { return len(s.bindings) }

// IsEmpty reports whether no parameter is bound.
func (s *Substitution) IsEmpty() bool { return len(s.bindings) == 0 }

// Domain returns the bound parameters in deterministic (ID-sorted) order.
func (s *Substitution) Domain() []*Parameter {
	ids := make([]string, 0, len(s.params))
	for id := range s.params {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]*Parameter, len(ids))
	for i, id := range ids {
		out[i] = s.params[id]
	}
	return out
}

// Clone returns an independent copy of the substitution.
func (s *Substitution) Clone() *Substitution {
	c := NewSubstitution()
	for id, t := range s.bindings {
		c.bindings[id] = t
		c.params[id] = s.params[id]
	}
	return c
}

// Merge combines s with other, returning false on a conflicting binding
// (the same parameter bound to unequal types).
func (s *Substitution) Merge(other *Substitution) bool {
	if other == nil {
		return true
	}
	for id, t := range other.bindings {
		if prev, ok := s.bindings[id]; ok && !prev.Equal(t) {
			return false
		}
		s.bindings[id] = t
		s.params[id] = other.params[id]
	}
	return true
}

// Apply performs the substitution on t, replacing every occurrence of a
// bound type parameter (Definition 3.1). Unbound parameters are left
// intact. Application recurses through applications, projections, function
// types, intersections, and parameter bounds.
func (s *Substitution) Apply(t Type) Type { return s.ApplyB(nil, t) }

// ApplyB is Apply metered by a governor budget (nil = unmetered), charging
// one step per visited type node. Substitution is where pathological
// programs manufacture exponential work — a climb through
// `class E<T> : D<Pair<T,T>>` doubles the type's size per level — so
// metering per node (rather than per call) is what makes fuel exhaustion
// track the real cost.
func (s *Substitution) ApplyB(b *governor.Budget, t Type) Type {
	if t == nil || s == nil || len(s.bindings) == 0 {
		return t
	}
	b.Charge(1)
	b.Enter()
	out := s.applyWalk(b, t)
	b.Exit()
	return out
}

func (s *Substitution) applyWalk(b *governor.Budget, t Type) Type {
	switch tt := t.(type) {
	case *Parameter:
		if bound, ok := s.bindings[tt.ID()]; ok {
			return bound
		}
		return tt
	case *App:
		args := make([]Type, len(tt.Args))
		changed := false
		for i, a := range tt.Args {
			args[i] = s.ApplyB(b, a)
			if args[i] != tt.Args[i] {
				changed = true
			}
		}
		if !changed {
			return tt
		}
		return &App{Ctor: tt.Ctor, Args: args}
	case *Projection:
		nb := s.ApplyB(b, tt.Bound)
		if nb == tt.Bound {
			return tt
		}
		return &Projection{Var: tt.Var, Bound: nb}
	case *Func:
		params := make([]Type, len(tt.Params))
		for i, p := range tt.Params {
			params[i] = s.ApplyB(b, p)
		}
		return &Func{Params: params, Ret: s.ApplyB(b, tt.Ret)}
	case *Intersection:
		ms := make([]Type, len(tt.Members))
		for i, m := range tt.Members {
			ms[i] = s.ApplyB(b, m)
		}
		return &Intersection{Members: ms}
	case *Constructor:
		// Substituting under a binder: Definition 3.1 substitutes only
		// free parameters, so skip the constructor's own parameters.
		inner := s.Clone()
		for _, p := range tt.Params {
			delete(inner.bindings, p.ID())
			delete(inner.params, p.ID())
		}
		if tt.Super == nil || len(inner.bindings) == 0 {
			return tt
		}
		return &Constructor{
			TypeName: tt.TypeName,
			Params:   tt.Params,
			Super:    inner.ApplyB(b, tt.Super),
			Final:    tt.Final,
		}
	default:
		return t
	}
}

func (s *Substitution) String() string {
	parts := make([]string, 0, len(s.bindings))
	for _, p := range s.Domain() {
		parts = append(parts, p.ID()+" ↦ "+s.bindings[p.ID()].String())
	}
	return "[" + strings.Join(parts, ", ") + "]"
}
