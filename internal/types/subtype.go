package types

import "repro/internal/governor"

// Supertype implements the S(t) operation of the paper: the declared
// supertype of a type. S(T : t) = t; for a type application it is the
// constructor's supertype with the application's arguments substituted for
// the constructor's parameters (so S(B<Int>) = A<Int> for
// class B<T> : A<T>). Supertype of ⊤ is ⊤ itself.
func Supertype(t Type) Type { return SupertypeB(nil, t) }

// SupertypeB is Supertype metered by a governor budget (nil = unmetered).
// Guarded budgets bypass the supertype memo cache: the cache is shared
// across programs, so a hit would skip steps a cold cache charges and make
// the exhaustion point depend on what was compiled before.
func SupertypeB(b *governor.Budget, t Type) Type {
	b.Charge(1)
	switch tt := t.(type) {
	case Top:
		return Top{}
	case Bottom:
		return Top{}
	case *Simple:
		if tt.Super == nil {
			return Top{}
		}
		return tt.Super
	case *Parameter:
		return tt.UpperBound()
	case *Constructor:
		if tt.Super == nil {
			return Top{}
		}
		return tt.Super
	case *App:
		if tt.Ctor.Super == nil {
			return Top{}
		}
		if len(tt.Args) != len(tt.Ctor.Params) {
			// Malformed or partially-erased application: the relation
			// cannot be computed, so fail soft instead of indexing out of
			// range.
			return Top{}
		}
		if b.Guarded() || cachingDisabled.Load() {
			return appSupertype(b, tt)
		}
		bp := keyBufPool.Get().(*[]byte)
		key := AppendFingerprint((*bp)[:0], tt)
		if sup, ok := cachedSupertype(key); ok {
			*bp = key
			keyBufPool.Put(bp)
			return sup
		}
		sup := appSupertype(b, tt)
		storeSupertype(key, sup)
		*bp = key
		keyBufPool.Put(bp)
		return sup
	case *Func:
		return Top{}
	case *Intersection:
		return Top{}
	case *Projection:
		return tt.Bound
	}
	return Top{}
}

// appSupertype computes S((Λα.t)t̄): the constructor's supertype with the
// application's arguments substituted for the parameters. The caller has
// already checked Super != nil and the arity.
func appSupertype(b *governor.Budget, tt *App) Type {
	sigma := NewSubstitution()
	for i, p := range tt.Ctor.Params {
		sigma.Bind(p, tt.Args[i])
	}
	return sigma.ApplyB(b, tt.Ctor.Super)
}

// IsSubtype implements the nominal subtyping relation t1 <: t2 of the IR.
//
// The relation is reflexive; ⊥ <: t and t <: ⊤ for every t; nominal types
// follow their declared supertype chain; type applications of the same
// constructor compare their arguments respecting declaration-site variance
// and use-site projections; applications of different constructors walk the
// substituted supertype chain of the subtype side; function types are
// contravariant in parameters and covariant in the result.
func IsSubtype(t1, t2 Type) bool { return IsSubtypeB(nil, t1, t2) }

// IsSubtypeB is IsSubtype metered by a governor budget (nil = unmetered).
// It charges one step per relation entry plus one per chain-climb link, so
// a guarded walk over a pathological hierarchy exhausts its fuel after the
// same number of steps on every machine. Guarded budgets skip the
// cross-program pair cache for the same determinism reason as SupertypeB.
func IsSubtypeB(b *governor.Budget, t1, t2 Type) bool {
	if t1 == nil || t2 == nil {
		return false
	}
	b.Charge(1)
	if t1.Equal(t2) {
		return true
	}
	if _, ok := t2.(Top); ok {
		return true
	}
	if _, ok := t1.(Bottom); ok {
		return true
	}
	// Memoize only cross-constructor application queries whose operands'
	// fingerprints are already memoized. Cross-constructor, because only
	// that walk climbs the substituted supertype chain, allocating a
	// substitution per level (~880ns/12 allocs for a two-level climb), so a
	// ~240ns hit pays for itself — Simple/Parameter name-chain climbs and
	// same-constructor argument conformance are alloc-free walks cheaper
	// than any cache lookup. Fingerprint-ready, because a type that is
	// climbed repeatedly gets its fingerprint memoized by the Supertype
	// memo below, while a freshly built type seen once would pay a full
	// fingerprint walk just to miss; requiring readiness makes the skip
	// cost two atomic loads and keeps one-shot traffic (the generator's
	// candidate filtering, most checker conformance checks) off the cache
	// entirely.
	a1, app1 := t1.(*App)
	if !app1 || !a1.fp.ready() || !fingerprintReady(t2) || b.Guarded() || cachingDisabled.Load() {
		return isSubtypeUncached(b, t1, t2)
	}
	if a2, ok := t2.(*App); ok && a1.Ctor.Equal(a2.Ctor) {
		return isSubtypeUncached(b, t1, t2)
	}
	// Memoized path: the relation is a pure function of the canonical
	// fingerprints, so a hit returns exactly what the walk would.
	// Recursive sub-queries re-enter IsSubtypeB and are memoized too.
	bp := keyBufPool.Get().(*[]byte)
	key := AppendFingerprint((*bp)[:0], t1)
	key = append(key, pairSep)
	key = AppendFingerprint(key, t2)
	if val, ok := cachedSubtype(key); ok {
		*bp = key
		keyBufPool.Put(bp)
		return val
	}
	val := isSubtypeUncached(b, t1, t2)
	storeSubtype(key, val)
	*bp = key
	keyBufPool.Put(bp)
	return val
}

// isSubtypeUncached brackets the recursive walk with the governor's depth
// guard; re-entries through IsSubtypeB nest, so logical recursion depth is
// what the guard sees.
func isSubtypeUncached(b *governor.Budget, t1, t2 Type) bool {
	b.Enter()
	ok := isSubtypeWalk(b, t1, t2)
	b.Exit()
	return ok
}

// isSubtypeWalk is the relation's recursive walk, past the reflexive
// and extremal fast paths.
func isSubtypeWalk(b *governor.Budget, t1, t2 Type) bool {
	// An intersection is a subtype of t2 when any member is; t1 is a
	// subtype of an intersection when it is a subtype of every member.
	if x, ok := t1.(*Intersection); ok {
		for _, m := range x.Members {
			if IsSubtypeB(b, m, t2) {
				return true
			}
		}
		return false
	}
	if x, ok := t2.(*Intersection); ok {
		for _, m := range x.Members {
			if !IsSubtypeB(b, t1, m) {
				return false
			}
		}
		return true
	}

	switch a := t1.(type) {
	case Top:
		return false
	case *Simple:
		// Climb the declared chain iteratively, capped like SuperChain so
		// (malformed, test-only) cyclic hierarchies terminate.
		cur := a
		for i := 0; i < 64; i++ {
			b.Charge(1)
			if b2, ok := t2.(*Simple); ok && cur.TypeName == b2.TypeName {
				return true
			}
			if cur.Super == nil {
				return false
			}
			next, ok := cur.Super.(*Simple)
			if !ok {
				return IsSubtypeB(b, cur.Super, t2)
			}
			cur = next
		}
		return false
	case *Parameter:
		// A type parameter is a subtype of whatever its bound is a
		// subtype of. Nothing but itself (and ⊥) is a subtype of it.
		return IsSubtypeB(b, a.UpperBound(), t2)
	case *App:
		// Same capped climb for constructor hierarchies.
		cur := a
		for i := 0; i < 64; i++ {
			if b2, ok := t2.(*App); ok && cur.Ctor.Equal(b2.Ctor) {
				return argsConform(b, cur, b2)
			}
			sup := SupertypeB(b, cur)
			if _, isTop := sup.(Top); isTop {
				return false
			}
			next, ok := sup.(*App)
			if !ok {
				return IsSubtypeB(b, sup, t2)
			}
			cur = next
		}
		return false
	case *Func:
		b2, ok := t2.(*Func)
		if !ok || len(a.Params) != len(b2.Params) {
			return false
		}
		for i := range a.Params {
			if !IsSubtypeB(b, b2.Params[i], a.Params[i]) {
				return false
			}
		}
		return IsSubtypeB(b, a.Ret, b2.Ret)
	case *Constructor:
		// Raw constructors only relate to themselves (handled by Equal).
		return false
	}
	return false
}

// argsConform checks the type arguments of two applications of the same
// constructor, honouring declaration-site variance and use-site
// projections (Java wildcard containment).
func argsConform(bud *governor.Budget, a, b *App) bool {
	// Equal constructors guarantee equal parameter counts, but a malformed
	// or partially-erased application may carry a mismatched argument
	// list; such an application conforms to nothing.
	n := len(a.Ctor.Params)
	if len(a.Args) != n || len(b.Args) != n {
		return false
	}
	for i := range a.Args {
		v := a.Ctor.Params[i].Var
		if !argConforms(bud, a.Args[i], b.Args[i], v) {
			return false
		}
	}
	return true
}

func argConforms(b *governor.Budget, sub, sup Type, v Variance) bool {
	// Use-site projection on the supertype side: containment.
	if ps, ok := sup.(*Projection); ok {
		switch inner := sub.(type) {
		case *Projection:
			// out X <= out Y  iff X <: Y;  in X <= in Y  iff Y <: X.
			if inner.Var != ps.Var {
				return false
			}
			if ps.Var == Covariant {
				return IsSubtypeB(b, inner.Bound, ps.Bound)
			}
			return IsSubtypeB(b, ps.Bound, inner.Bound)
		default:
			if ps.Var == Covariant {
				return IsSubtypeB(b, sub, ps.Bound)
			}
			return IsSubtypeB(b, ps.Bound, sub)
		}
	}
	if ps, ok := sub.(*Projection); ok {
		// A projected argument conforms to a concrete one only through a
		// matching declaration-site variance: Cls<out Number> <= Cls<Number>
		// when Cls's parameter is declared `out`.
		if v == Covariant && ps.Var == Covariant {
			return IsSubtypeB(b, ps.Bound, sup)
		}
		if v == Contravariant && ps.Var == Contravariant {
			return IsSubtypeB(b, sup, ps.Bound)
		}
		return false
	}
	switch v {
	case Covariant:
		return IsSubtypeB(b, sub, sup)
	case Contravariant:
		return IsSubtypeB(b, sup, sub)
	default:
		return sub.Equal(sup)
	}
}

// SuperChain returns the chain of supertypes of t from t itself up to ⊤,
// inclusive on both ends. Cyclic hierarchies are cut after 64 links; the
// capped chain is still terminated with ⊤ so that consumers iterating "up
// to Top" (lub2, UnifyPrime) keep their invariant — and the truncation is
// counted and reported through SetSuperChainTruncationHook so silent caps
// stop reading as "covered everything".
func SuperChain(t Type) []Type { return SuperChainB(nil, t) }

// SuperChainB is SuperChain metered by a governor budget (nil = unmetered).
func SuperChainB(b *governor.Budget, t Type) []Type {
	var chain []Type
	cur := t
	for i := 0; i < 64; i++ { // guard against cyclic hierarchies
		chain = append(chain, cur)
		if _, ok := cur.(Top); ok {
			return chain
		}
		cur = SupertypeB(b, cur)
	}
	noteSuperChainTruncation()
	return append(chain, Top{})
}

// Lub implements the least upper bound operator ⊔ used by type inference
// (Definition 3.3). For types with a common constructor ancestor whose
// arguments disagree, the result covariantly projects the disagreeing
// arguments (mirroring what Kotlin does before approximation); when no
// informative bound exists, the result is ⊤.
func Lub(ts ...Type) Type { return LubB(nil, ts...) }

// LubB is Lub metered by a governor budget (nil = unmetered).
func LubB(b *governor.Budget, ts ...Type) Type {
	if len(ts) == 0 {
		return Top{}
	}
	acc := ts[0]
	for _, t := range ts[1:] {
		acc = lub2(b, acc, t)
	}
	return acc
}

func lub2(bud *governor.Budget, a, b Type) Type {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	bud.Charge(1)
	if IsSubtypeB(bud, a, b) {
		return b
	}
	if IsSubtypeB(bud, b, a) {
		return a
	}
	// Function types combine pointwise: results join at their least upper
	// bound and parameters meet at their greatest lower bound (parameters
	// are contravariant). The meet is computed only for subtype-related
	// parameter pairs; unrelated parameters have no useful meet in a
	// nominal system, so the join falls back to ⊤.
	if fa, ok := a.(*Func); ok {
		if fb, ok := b.(*Func); ok && len(fa.Params) == len(fb.Params) {
			params := make([]Type, len(fa.Params))
			meetable := true
			for i := range fa.Params {
				switch {
				case fa.Params[i].Equal(fb.Params[i]):
					params[i] = fa.Params[i]
				case IsSubtypeB(bud, fa.Params[i], fb.Params[i]):
					params[i] = fa.Params[i]
				case IsSubtypeB(bud, fb.Params[i], fa.Params[i]):
					params[i] = fb.Params[i]
				default:
					meetable = false
				}
				if !meetable {
					break
				}
			}
			if meetable {
				return &Func{Params: params, Ret: LubB(bud, fa.Ret, fb.Ret)}
			}
			return Top{}
		}
	}
	// Walk a's supertype chain from most specific to ⊤; the first entry
	// that b relates to is the join. A parameterized entry with the same
	// constructor in b's chain joins by merging arguments; a nominal
	// entry that b conforms to is the join directly. Since a <: sa for
	// every chain entry and the chain ends at ⊤, this terminates with the
	// most specific common supertype.
	chainA, chainB := SuperChainB(bud, a), SuperChainB(bud, b)
	for _, sa := range chainA {
		if appA, ok := sa.(*App); ok {
			for _, sb := range chainB {
				if appB, ok := sb.(*App); ok && appA.Ctor.Equal(appB.Ctor) {
					if merged, ok := mergeApps(bud, appA, appB); ok {
						return merged
					}
				}
			}
		}
		if IsSubtypeB(bud, b, sa) {
			return sa
		}
	}
	return Top{}
}

// mergeApps combines two applications of the same constructor into their
// least common instantiation: disagreeing arguments join at their least
// upper bound, directly for declaration-site covariant parameters and
// through a use-site out-projection for invariant ones. Positions
// involving contravariant (in) projections or contravariant parameters
// would need greatest lower bounds; merging there is not an upper bound,
// so the merge reports failure and the caller falls back to a plainer
// common supertype.
func mergeApps(bud *governor.Budget, a, b *App) (Type, bool) {
	n := len(a.Ctor.Params)
	if len(a.Args) != n || len(b.Args) != n {
		return nil, false // malformed/partially-erased application
	}
	args := make([]Type, len(a.Args))
	for i := range a.Args {
		if a.Args[i].Equal(b.Args[i]) {
			args[i] = a.Args[i]
			continue
		}
		if isInProjection(a.Args[i]) || isInProjection(b.Args[i]) ||
			a.Ctor.Params[i].Var == Contravariant {
			return nil, false
		}
		join := LubB(bud, stripProjection(a.Args[i]), stripProjection(b.Args[i]))
		if a.Ctor.Params[i].Var == Covariant {
			args[i] = join
			continue
		}
		args[i] = &Projection{Var: Covariant, Bound: join}
	}
	return a.Ctor.Apply(args...), true
}

func isInProjection(t Type) bool {
	p, ok := t.(*Projection)
	return ok && p.Var == Contravariant
}

func stripProjection(t Type) Type {
	if p, ok := t.(*Projection); ok {
		return p.Bound
	}
	return t
}
