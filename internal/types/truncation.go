package types

import "sync/atomic"

// SuperChain's cyclic-climb cap appends ⊤ after 64 links so malformed
// hierarchies terminate — but a silently capped chain reads as "covered
// everything" to consumers like lub2 and UnifyPrime. The cap is therefore
// counted here and surfaced through an optional hook so observability
// wiring (internal/cli) can mirror it into a metrics counter and a trace
// event without this package importing internal/metrics.

var (
	superChainTruncations atomic.Uint64
	truncationHook        atomic.Value // of func()
)

func noteSuperChainTruncation() {
	superChainTruncations.Add(1)
	if f, ok := truncationHook.Load().(func()); ok && f != nil {
		f()
	}
}

// SuperChainTruncations returns how many SuperChain climbs hit the cyclic
// cap since process start.
func SuperChainTruncations() uint64 {
	return superChainTruncations.Load()
}

// SetSuperChainTruncationHook installs a callback fired on every capped
// climb. Pass nil to remove it. The hook runs on the climbing goroutine —
// keep it cheap and non-blocking.
func SetSuperChainTruncationHook(f func()) {
	if f == nil {
		truncationHook.Store(func() {})
		return
	}
	truncationHook.Store(f)
}
