// Package types implements the type algebra of the Hephaestus IR
// (PLDI 2022, "Finding Typing Compiler Bugs", Figure 4b).
//
// A type is one of:
//
//   - ⊤ (Top) and ⊥ (Bottom), the extremal types,
//   - a regular (nominal) type T : t labelled with a name and a supertype,
//   - a type parameter φ : t with an upper bound,
//   - a type constructor Λα.t introducing type parameters,
//   - a type application (Λα.t) t̄ instantiating a constructor, or
//   - a function type (for lambdas and method references).
//
// Go has no sum types, so Type is a sealed interface: every variant embeds
// the unexported marker method and consumers dispatch with exhaustive type
// switches. Identity of type parameters is by qualified name (owner.name),
// which the generator keeps globally unique.
package types

import (
	"fmt"
	"strings"
)

// Variance describes how a type parameter or use-site projection relates to
// subtyping of the enclosing type application.
type Variance int

// The three variances of the Java/Kotlin generics framework. Invariant is
// Java's default; Covariant corresponds to Kotlin's `out` (Java's
// `? extends`), Contravariant to `in` (`? super`).
const (
	Invariant Variance = iota
	Covariant
	Contravariant
)

func (v Variance) String() string {
	switch v {
	case Covariant:
		return "out"
	case Contravariant:
		return "in"
	default:
		return ""
	}
}

// Type is the sealed interface implemented by every IR type.
type Type interface {
	// Name returns the bare nominal name of the type ("A", "Int", "Any").
	Name() string
	// String returns the fully rendered form ("A<B<Int>, out String>").
	String() string
	// Equal reports structural equality.
	Equal(Type) bool

	sealed()
}

// Top is the maximal type ⊤ (Object in Java, Any in Kotlin).
type Top struct{}

// Bottom is the minimal type ⊥ (Nothing in Kotlin). It is a subtype of
// every type; constant null values are typed as Bottom.
type Bottom struct{}

func (Top) Name() string    { return "Any" }
func (Bottom) Name() string { return "Nothing" }

func (Top) String() string    { return "Any" }
func (Bottom) String() string { return "Nothing" }

func (Top) Equal(o Type) bool    { _, ok := o.(Top); return ok }
func (Bottom) Equal(o Type) bool { _, ok := o.(Bottom); return ok }

func (Top) sealed()    {}
func (Bottom) sealed() {}

// Simple is a regular nominal type T : t (Fig. 4b) with a name and a
// declared supertype. Built-in ground types (Int, String, ...) are Simple
// types whose Builtin flag is set.
type Simple struct {
	TypeName string
	// Super is the declared supertype; nil means ⊤.
	Super Type
	// Builtin marks language-provided types so translators can map them.
	Builtin bool
	// Sealed (non-open) types cannot be extended; mirrors Kotlin's default.
	Final bool

	fp fpBox
}

// NewSimple returns a nominal type with the given name and supertype
// (nil super means ⊤).
func NewSimple(name string, super Type) *Simple {
	return &Simple{TypeName: name, Super: super}
}

func (s *Simple) Name() string   { return s.TypeName }
func (s *Simple) String() string { return s.TypeName }

func (s *Simple) Equal(o Type) bool {
	os, ok := o.(*Simple)
	return ok && os.TypeName == s.TypeName
}

func (*Simple) sealed() {}

// Parameter is a type parameter φ : t with an upper bound (Fig. 4b).
// Owner qualifies the parameter ("A" for class A<T>, "m" for fun <T> m),
// making IDs unique program-wide.
type Parameter struct {
	Owner     string
	ParamName string
	// Bound is the declared upper bound; nil means ⊤.
	Bound Type
	// Var is the declaration-site variance (Kotlin `out T` / `in T`).
	Var Variance

	fp fpBox
}

// NewParameter returns an unbounded, invariant type parameter.
func NewParameter(owner, name string) *Parameter {
	return &Parameter{Owner: owner, ParamName: name}
}

// ID returns the program-wide unique identity of the parameter.
func (p *Parameter) ID() string { return p.Owner + "." + p.ParamName }

func (p *Parameter) Name() string { return p.ParamName }

func (p *Parameter) String() string {
	if p.Bound == nil {
		return p.ParamName
	}
	return p.ParamName + ": " + p.Bound.String()
}

func (p *Parameter) Equal(o Type) bool {
	op, ok := o.(*Parameter)
	return ok && op.ID() == p.ID()
}

// UpperBound returns the declared bound, or ⊤ when unbounded.
func (p *Parameter) UpperBound() Type {
	if p.Bound == nil {
		return Top{}
	}
	return p.Bound
}

func (*Parameter) sealed() {}

// Constructor is a type constructor Λα.t: a named, parameterized type
// awaiting instantiation (e.g. the class A<T> before any use A<Int>).
// Super may mention the constructor's own parameters, as in
// class B<T> : A<T>.
type Constructor struct {
	TypeName string
	Params   []*Parameter
	// Super is the declared supertype (may reference Params); nil means ⊤.
	Super Type
	Final bool

	fp fpBox
}

// NewConstructor returns a type constructor over the given parameters.
func NewConstructor(name string, params []*Parameter, super Type) *Constructor {
	return &Constructor{TypeName: name, Params: params, Super: super}
}

func (c *Constructor) Name() string { return c.TypeName }

func (c *Constructor) String() string {
	names := make([]string, len(c.Params))
	for i, p := range c.Params {
		names[i] = p.String()
	}
	return c.TypeName + "<" + strings.Join(names, ", ") + ">"
}

func (c *Constructor) Equal(o Type) bool {
	oc, ok := o.(*Constructor)
	return ok && oc.TypeName == c.TypeName && len(oc.Params) == len(c.Params)
}

func (*Constructor) sealed() {}

// Apply instantiates the constructor with the given type arguments,
// yielding a type application (Λα.t) t̄. It panics on arity mismatch, which
// is always a programming error in the generator or checker.
func (c *Constructor) Apply(args ...Type) *App {
	if len(args) != len(c.Params) {
		panic(fmt.Sprintf("types: %s instantiated with %d arguments, wants %d",
			c.TypeName, len(args), len(c.Params)))
	}
	return &App{Ctor: c, Args: args}
}

// App is a type application (Λα.t) t̄ — a parameterized type such as
// A<String>. Arguments may be Projections for use-site variance.
type App struct {
	Ctor *Constructor
	Args []Type

	fp fpBox
}

func (a *App) Name() string { return a.Ctor.TypeName }

func (a *App) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Ctor.TypeName + "<" + strings.Join(parts, ", ") + ">"
}

func (a *App) Equal(o Type) bool {
	oa, ok := o.(*App)
	if !ok || !oa.Ctor.Equal(a.Ctor) || len(oa.Args) != len(a.Args) {
		return false
	}
	for i := range a.Args {
		if !a.Args[i].Equal(oa.Args[i]) {
			return false
		}
	}
	return true
}

func (*App) sealed() {}

// Projection is a use-site variance annotation on a type-application
// argument: `out Number` (? extends Number) or `in Number` (? super
// Number). A projection is not a first-class type; it only appears as an
// App argument. Var is never Invariant.
type Projection struct {
	Var   Variance
	Bound Type
}

func (p *Projection) Name() string   { return p.Bound.Name() }
func (p *Projection) String() string { return p.Var.String() + " " + p.Bound.String() }

func (p *Projection) Equal(o Type) bool {
	op, ok := o.(*Projection)
	return ok && op.Var == p.Var && op.Bound.Equal(p.Bound)
}

func (*Projection) sealed() {}

// Func is a function type (t1, ..., tn) -> r for lambdas and method
// references.
type Func struct {
	Params []Type
	Ret    Type
}

func (f *Func) Name() string { return "Function" + fmt.Sprint(len(f.Params)) }

func (f *Func) String() string {
	parts := make([]string, len(f.Params))
	for i, t := range f.Params {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, ", ") + ") -> " + f.Ret.String()
}

func (f *Func) Equal(o Type) bool {
	of, ok := o.(*Func)
	if !ok || len(of.Params) != len(f.Params) || !of.Ret.Equal(f.Ret) {
		return false
	}
	for i := range f.Params {
		if !f.Params[i].Equal(of.Params[i]) {
			return false
		}
	}
	return true
}

func (*Func) sealed() {}

// Intersection is an intersection type t1 & t2 & ... Compilers form these
// internally, e.g. when computing the least upper bound of branches of a
// conditional (the paper's KT-44082 revolves around approximating one).
type Intersection struct {
	Members []Type
}

func (x *Intersection) Name() string { return "Intersection" }

func (x *Intersection) String() string {
	parts := make([]string, len(x.Members))
	for i, t := range x.Members {
		parts[i] = t.String()
	}
	return strings.Join(parts, " & ")
}

func (x *Intersection) Equal(o Type) bool {
	ox, ok := o.(*Intersection)
	if !ok || len(ox.Members) != len(x.Members) {
		return false
	}
	for i := range x.Members {
		if !x.Members[i].Equal(ox.Members[i]) {
			return false
		}
	}
	return true
}

func (*Intersection) sealed() {}

// IsParameterized reports whether t is a type application or a constructor.
func IsParameterized(t Type) bool {
	switch t.(type) {
	case *App, *Constructor:
		return true
	}
	return false
}

// ContainsParameter reports whether the given type parameter occurs
// anywhere inside t.
func ContainsParameter(t Type, p *Parameter) bool {
	switch tt := t.(type) {
	case *Parameter:
		return tt.ID() == p.ID()
	case *App:
		for _, a := range tt.Args {
			if ContainsParameter(a, p) {
				return true
			}
		}
	case *Projection:
		return ContainsParameter(tt.Bound, p)
	case *Func:
		for _, a := range tt.Params {
			if ContainsParameter(a, p) {
				return true
			}
		}
		return ContainsParameter(tt.Ret, p)
	case *Intersection:
		for _, m := range tt.Members {
			if ContainsParameter(m, p) {
				return true
			}
		}
	}
	return false
}

// HasFreeParameters reports whether any type parameter occurs in t. It is
// the allocation-free fast path for the very common "is t ground?" check,
// short-circuiting on the first parameter instead of collecting them all
// like FreeParameters.
func HasFreeParameters(t Type) bool {
	switch tt := t.(type) {
	case *Parameter:
		return true
	case *App:
		for _, a := range tt.Args {
			if HasFreeParameters(a) {
				return true
			}
		}
	case *Projection:
		return HasFreeParameters(tt.Bound)
	case *Func:
		for _, a := range tt.Params {
			if HasFreeParameters(a) {
				return true
			}
		}
		return HasFreeParameters(tt.Ret)
	case *Intersection:
		for _, m := range tt.Members {
			if HasFreeParameters(m) {
				return true
			}
		}
	}
	return false
}

// FreeParameters returns the type parameters occurring in t, in first-use
// order and without duplicates.
func FreeParameters(t Type) []*Parameter {
	var out []*Parameter
	seen := map[string]bool{}
	var walk func(Type)
	walk = func(t Type) {
		switch tt := t.(type) {
		case *Parameter:
			if !seen[tt.ID()] {
				seen[tt.ID()] = true
				out = append(out, tt)
			}
		case *App:
			for _, a := range tt.Args {
				walk(a)
			}
		case *Projection:
			walk(tt.Bound)
		case *Func:
			for _, a := range tt.Params {
				walk(a)
			}
			walk(tt.Ret)
		case *Intersection:
			for _, m := range tt.Members {
				walk(m)
			}
		}
	}
	walk(t)
	return out
}
