package types

import "testing"

// hierarchy builds the running example of the paper:
// open class A<T>; class B<T>(val f: A<T>) : A<T>().
func hierarchy() (*Constructor, *Constructor, *Builtins) {
	b := NewBuiltins()
	aT := NewParameter("A", "T")
	ctorA := NewConstructor("A", []*Parameter{aT}, nil)
	bT := NewParameter("B", "T")
	ctorB := NewConstructor("B", []*Parameter{bT}, ctorA.Apply(bT))
	return ctorA, ctorB, b
}

func TestExtremalTypes(t *testing.T) {
	b := NewBuiltins()
	for _, ty := range b.All() {
		if !IsSubtype(ty, Top{}) {
			t.Errorf("%s should be a subtype of Any", ty)
		}
		if !IsSubtype(Bottom{}, ty) {
			t.Errorf("Nothing should be a subtype of %s", ty)
		}
		if IsSubtype(Top{}, ty) {
			t.Errorf("Any must not be a subtype of %s", ty)
		}
	}
	if !IsSubtype(Top{}, Top{}) || !IsSubtype(Bottom{}, Bottom{}) {
		t.Error("subtyping must be reflexive at the extremes")
	}
}

func TestBuiltinNumericTower(t *testing.T) {
	b := NewBuiltins()
	for _, n := range []*Simple{b.Byte, b.Short, b.Int, b.Long, b.Float, b.Double} {
		if !IsSubtype(n, b.Number) {
			t.Errorf("%s <: Number expected", n)
		}
		if IsSubtype(b.Number, n) {
			t.Errorf("Number must not be a subtype of %s", n)
		}
		if !b.IsNumeric(n) {
			t.Errorf("IsNumeric(%s) should hold", n)
		}
	}
	if IsSubtype(b.String, b.Number) {
		t.Error("String must not be numeric")
	}
	if b.IsNumeric(b.String) {
		t.Error("IsNumeric(String) must be false")
	}
}

func TestNominalSubtypingChain(t *testing.T) {
	animal := NewSimple("Animal", nil)
	dog := NewSimple("Dog", animal)
	puppy := NewSimple("Puppy", dog)
	if !IsSubtype(puppy, animal) {
		t.Error("Puppy <: Animal via transitivity")
	}
	if !IsSubtype(dog, animal) || IsSubtype(animal, dog) {
		t.Error("Dog <: Animal must be antisymmetric here")
	}
	if !IsSubtype(puppy, puppy) {
		t.Error("reflexivity")
	}
}

func TestParameterizedSubtyping(t *testing.T) {
	ctorA, ctorB, b := hierarchy()
	aString := ctorA.Apply(b.String)
	bString := ctorB.Apply(b.String)
	bInt := ctorB.Apply(b.Int)

	if !IsSubtype(bString, aString) {
		t.Error("B<String> <: A<String> via class B<T> : A<T>")
	}
	if IsSubtype(bInt, aString) {
		t.Error("B<Int> must not be a subtype of A<String> (invariance)")
	}
	if IsSubtype(aString, bString) {
		t.Error("A<String> must not be a subtype of B<String>")
	}
	if !IsSubtype(bString, Top{}) {
		t.Error("B<String> <: Any")
	}
}

func TestInvariantArguments(t *testing.T) {
	ctorA, _, b := hierarchy()
	aInt := ctorA.Apply(b.Int)
	aNumber := ctorA.Apply(b.Number)
	if IsSubtype(aInt, aNumber) {
		t.Error("invariant A<Int> must not be a subtype of A<Number>")
	}
	if !IsSubtype(aInt, ctorA.Apply(b.Int)) {
		t.Error("A<Int> <: A<Int>")
	}
}

func TestDeclarationSiteVariance(t *testing.T) {
	b := NewBuiltins()
	outT := &Parameter{Owner: "Producer", ParamName: "T", Var: Covariant}
	producer := NewConstructor("Producer", []*Parameter{outT}, nil)
	inT := &Parameter{Owner: "Consumer", ParamName: "T", Var: Contravariant}
	consumer := NewConstructor("Consumer", []*Parameter{inT}, nil)

	if !IsSubtype(producer.Apply(b.Int), producer.Apply(b.Number)) {
		t.Error("covariant: Producer<Int> <: Producer<Number>")
	}
	if IsSubtype(producer.Apply(b.Number), producer.Apply(b.Int)) {
		t.Error("covariant must not flip")
	}
	if !IsSubtype(consumer.Apply(b.Number), consumer.Apply(b.Int)) {
		t.Error("contravariant: Consumer<Number> <: Consumer<Int>")
	}
	if IsSubtype(consumer.Apply(b.Int), consumer.Apply(b.Number)) {
		t.Error("contravariant must not flip")
	}
}

func TestUseSiteProjections(t *testing.T) {
	ctorA, _, b := hierarchy()
	aInt := ctorA.Apply(b.Int)
	aOutNumber := ctorA.Apply(&Projection{Var: Covariant, Bound: b.Number})
	aInNumber := ctorA.Apply(&Projection{Var: Contravariant, Bound: b.Number})
	aOutInt := ctorA.Apply(&Projection{Var: Covariant, Bound: b.Int})

	if !IsSubtype(aInt, aOutNumber) {
		t.Error("A<Int> <: A<out Number>")
	}
	if IsSubtype(ctorA.Apply(b.String), aOutNumber) {
		t.Error("A<String> must not conform to A<out Number>")
	}
	if !IsSubtype(ctorA.Apply(b.Number), aInNumber) {
		t.Error("A<Number> <: A<in Number>")
	}
	if !IsSubtype(ctorA.Apply(Top{}), aInNumber) {
		t.Error("A<Any> <: A<in Number> (super direction)")
	}
	if IsSubtype(aInt, aInNumber) {
		t.Error("A<Int> must not conform to A<in Number>")
	}
	if !IsSubtype(aOutInt, aOutNumber) {
		t.Error("projection containment: A<out Int> <: A<out Number>")
	}
	if IsSubtype(aOutNumber, aOutInt) {
		t.Error("projection containment must not flip")
	}
	if IsSubtype(aOutNumber, aInt) {
		t.Error("a projected type must not conform to a concrete instantiation")
	}
}

func TestTypeParameterSubtyping(t *testing.T) {
	b := NewBuiltins()
	tp := &Parameter{Owner: "m", ParamName: "T", Bound: b.Number}
	if !IsSubtype(tp, b.Number) {
		t.Error("T : Number is a subtype of its bound")
	}
	if !IsSubtype(tp, Top{}) {
		t.Error("T <: Any")
	}
	if IsSubtype(b.Int, tp) {
		t.Error("no concrete type is a subtype of a rigid parameter")
	}
	if !IsSubtype(tp, tp) {
		t.Error("parameter reflexivity")
	}
	if !IsSubtype(Bottom{}, tp) {
		t.Error("Nothing <: T")
	}
}

func TestFunctionTypeSubtyping(t *testing.T) {
	b := NewBuiltins()
	f1 := &Func{Params: []Type{b.Number}, Ret: b.Int}
	f2 := &Func{Params: []Type{b.Int}, Ret: b.Number}
	if !IsSubtype(f1, f2) {
		t.Error("(Number)->Int <: (Int)->Number (contra params, co ret)")
	}
	if IsSubtype(f2, f1) {
		t.Error("function subtyping must not flip")
	}
	f3 := &Func{Params: []Type{b.Int, b.Int}, Ret: b.Int}
	if IsSubtype(f1, f3) {
		t.Error("arity mismatch must fail")
	}
}

func TestIntersectionSubtyping(t *testing.T) {
	b := NewBuiltins()
	w := NewSimple("W", nil)
	a := NewSimple("A", nil)
	x := &Intersection{Members: []Type{a, w}}
	if !IsSubtype(x, a) || !IsSubtype(x, w) {
		t.Error("A & W is a subtype of both members")
	}
	if IsSubtype(x, b.String) {
		t.Error("A & W must not be a subtype of String")
	}
	if !IsSubtype(Bottom{}, x) {
		t.Error("Nothing <: A & W")
	}
}

func TestSupertypeOperation(t *testing.T) {
	ctorA, ctorB, b := hierarchy()
	sup := Supertype(ctorB.Apply(b.String))
	want := ctorA.Apply(b.String)
	if !sup.Equal(want) {
		t.Errorf("S(B<String>) = %s, want %s", sup, want)
	}
	if !Supertype(b.Int).Equal(b.Number) {
		t.Error("S(Int) = Number")
	}
	if _, ok := Supertype(Top{}).(Top); !ok {
		t.Error("S(Any) = Any")
	}
}

func TestSubstitutionApplication(t *testing.T) {
	ctorA, ctorB, b := hierarchy()
	tp := ctorB.Params[0]
	sigma := NewSubstitution()
	sigma.Bind(tp, b.String)

	// [T ↦ String] A<T> = A<String>
	got := sigma.Apply(ctorA.Apply(tp))
	if !got.Equal(ctorA.Apply(b.String)) {
		t.Errorf("substitution into application failed: %s", got)
	}
	// Unbound parameters are untouched.
	other := NewParameter("X", "U")
	if !sigma.Apply(other).Equal(other) {
		t.Error("unbound parameter must be preserved")
	}
	// Nested: [T ↦ String] A<A<T>> = A<A<String>>.
	nested := sigma.Apply(ctorA.Apply(ctorA.Apply(tp)))
	if !nested.Equal(ctorA.Apply(ctorA.Apply(b.String))) {
		t.Errorf("nested substitution failed: %s", nested)
	}
	// Through projections.
	proj := sigma.Apply(ctorA.Apply(&Projection{Var: Covariant, Bound: tp}))
	want := ctorA.Apply(&Projection{Var: Covariant, Bound: b.String})
	if !proj.Equal(want) {
		t.Errorf("projection substitution failed: %s", proj)
	}
}

func TestSubstitutionMergeConflicts(t *testing.T) {
	b := NewBuiltins()
	p := NewParameter("m", "T")
	s1 := NewSubstitution()
	s1.Bind(p, b.Int)
	s2 := NewSubstitution()
	s2.Bind(p, b.Int)
	if !s1.Merge(s2) {
		t.Error("merging equal bindings must succeed")
	}
	s3 := NewSubstitution()
	s3.Bind(p, b.String)
	if s1.Merge(s3) {
		t.Error("conflicting bindings must fail to merge")
	}
}

func TestUnifyParameter(t *testing.T) {
	ctorA, _, b := hierarchy()
	tp := NewParameter("m", "T")
	sigma := Unify(tp, b.String)
	if sigma == nil {
		t.Fatal("unify(T, String) must succeed")
	}
	if got, _ := sigma.Lookup(tp); !got.Equal(b.String) {
		t.Errorf("unify(T, String) = %s", sigma)
	}

	// unify(A<T>, A<String>) = [T ↦ String]
	sigma = Unify(ctorA.Apply(tp), ctorA.Apply(b.String))
	if sigma == nil {
		t.Fatal("unify(A<T>, A<String>) must succeed")
	}
	if got, _ := sigma.Lookup(tp); !got.Equal(b.String) {
		t.Errorf("wrong binding: %s", sigma)
	}
}

func TestUnifyThroughHierarchy(t *testing.T) {
	ctorA, ctorB, b := hierarchy()
	tp := NewParameter("m", "T")
	// σ B<T> <: A<String> requires [T ↦ String].
	sigma := Unify(ctorB.Apply(tp), ctorA.Apply(b.String))
	if sigma == nil {
		t.Fatal("unify(B<T>, A<String>) must succeed through the hierarchy")
	}
	got, ok := sigma.Lookup(tp)
	if !ok || !got.Equal(b.String) {
		t.Errorf("want [T ↦ String], got %s", sigma)
	}
	inst := sigma.Apply(ctorB.Apply(tp))
	if !IsSubtype(inst, ctorA.Apply(b.String)) {
		t.Errorf("σ·B<T> = %s must be a subtype of A<String>", inst)
	}
}

func TestUnifyRespectsBounds(t *testing.T) {
	b := NewBuiltins()
	// fun <T2 : String> bar(): T2 flowing into foo(x: T1 : Number) — the
	// KT-48765 scenario. Unifying T2 with Number must FAIL because
	// Number is not a subtype of String.
	t2 := &Parameter{Owner: "bar", ParamName: "T2", Bound: b.String}
	if sigma := Unify(t2, b.Number); sigma != nil {
		t.Errorf("unify must reject bound violation, got %s", sigma)
	}
	// The unchecked variant (modelling the buggy compiler) accepts it.
	if sigma := UnifyUnchecked(t2, b.Number); sigma == nil {
		t.Error("unchecked unification models the compiler bug and must succeed")
	}
}

func TestUnifyGroundMismatch(t *testing.T) {
	ctorA, _, b := hierarchy()
	if sigma := Unify(ctorA.Apply(b.Int), ctorA.Apply(b.String)); sigma != nil {
		t.Errorf("unify(A<Int>, A<String>) must fail, got %s", sigma)
	}
	if sigma := Unify(b.String, b.Int); sigma != nil {
		t.Errorf("unify(String, Int) must fail, got %s", sigma)
	}
	if sigma := Unify(b.Int, b.Number); sigma == nil {
		t.Error("unify(Int, Number) trivially holds (Int <: Number)")
	}
}

func TestUnifyNestedApplications(t *testing.T) {
	ctorA, ctorB, b := hierarchy()
	tp := NewParameter("m", "T")
	// unify(B<A<T>>, B<A<Long>>) = [T ↦ Long] — the GROOVY-10080 shape.
	sigma := Unify(ctorB.Apply(ctorA.Apply(tp)), ctorB.Apply(ctorA.Apply(b.Long)))
	if sigma == nil {
		t.Fatal("nested unification must succeed")
	}
	if got, _ := sigma.Lookup(tp); !got.Equal(b.Long) {
		t.Errorf("want [T ↦ Long], got %s", sigma)
	}
}

func TestUnifyPrimeDependentParameters(t *testing.T) {
	ctorA, ctorB, b := hierarchy()
	// unify'(A<String>, B<String>) = [B.T ↦ A.T-instantiation]: the
	// dependency that instantiating B's T also instantiates A's T.
	sigma := UnifyPrime(ctorA.Apply(b.String), ctorB.Apply(b.String))
	if sigma == nil || sigma.IsEmpty() {
		// Arguments equal on both sides: dependency recorded as the
		// concrete instantiation String.
		t.Fatalf("unify' must record a dependency, got %v", sigma)
	}
	// unify'(A<A.T>, B<B.T>) should map B.T to A.T (param-to-param).
	sigma = UnifyPrime(ctorA.Apply(ctorA.Params[0]), ctorB.Apply(ctorB.Params[0]))
	got, ok := sigma.Lookup(ctorB.Params[0])
	if !ok {
		t.Fatalf("unify' must bind B.T, got %s", sigma)
	}
	if p, isParam := got.(*Parameter); !isParam || p.ID() != ctorA.Params[0].ID() {
		t.Errorf("want [B.T ↦ A.T], got %s", sigma)
	}
}

func TestLub(t *testing.T) {
	ctorA, ctorB, b := hierarchy()
	if got := Lub(b.Int, b.Long); !got.Equal(b.Number) {
		t.Errorf("Int ⊔ Long = %s, want Number", got)
	}
	if got := Lub(b.Int, b.Int); !got.Equal(b.Int) {
		t.Errorf("Int ⊔ Int = %s", got)
	}
	if got := Lub(b.Int, b.String); (got != Type(Top{})) && !got.Equal(Top{}) {
		t.Errorf("Int ⊔ String = %s, want Any", got)
	}
	// B<String> ⊔ A<String> = A<String>.
	if got := Lub(ctorB.Apply(b.String), ctorA.Apply(b.String)); !got.Equal(ctorA.Apply(b.String)) {
		t.Errorf("B<String> ⊔ A<String> = %s", got)
	}
	// A<Int> ⊔ A<Long> projects: A<out Number>.
	got := Lub(ctorA.Apply(b.Int), ctorA.Apply(b.Long))
	want := ctorA.Apply(&Projection{Var: Covariant, Bound: b.Number})
	if !got.Equal(want) {
		t.Errorf("A<Int> ⊔ A<Long> = %s, want %s", got, want)
	}
	// ⊥ is the identity of ⊔.
	if got := Lub(Bottom{}, b.String); !got.Equal(b.String) {
		t.Errorf("Nothing ⊔ String = %s", got)
	}
	if got := Lub(); !got.Equal(Top{}) {
		t.Errorf("empty ⊔ = %s, want Any", got)
	}
}

func TestFreeParametersAndContains(t *testing.T) {
	ctorA, _, b := hierarchy()
	tp1 := NewParameter("m", "T")
	tp2 := NewParameter("m", "U")
	typ := ctorA.Apply(&Func{Params: []Type{tp1}, Ret: ctorA.Apply(tp2)})
	free := FreeParameters(typ)
	if len(free) != 2 || free[0].ID() != tp1.ID() || free[1].ID() != tp2.ID() {
		t.Errorf("FreeParameters = %v", free)
	}
	if !ContainsParameter(typ, tp1) || !ContainsParameter(typ, tp2) {
		t.Error("ContainsParameter must find both")
	}
	if ContainsParameter(b.String, tp1) {
		t.Error("String contains no parameters")
	}
	if ContainsParameter(typ, NewParameter("x", "T")) {
		t.Error("parameters are identified by owner-qualified name")
	}
}

func TestStringRendering(t *testing.T) {
	ctorA, ctorB, b := hierarchy()
	cases := []struct {
		t    Type
		want string
	}{
		{ctorA.Apply(b.String), "A<String>"},
		{ctorB.Apply(ctorA.Apply(b.Long)), "B<A<Long>>"},
		{ctorA.Apply(&Projection{Var: Covariant, Bound: b.Number}), "A<out Number>"},
		{&Func{Params: []Type{b.Int}, Ret: b.String}, "(Int) -> String"},
		{&Intersection{Members: []Type{b.String, b.Int}}, "String & Int"},
		{Top{}, "Any"},
		{Bottom{}, "Nothing"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestConstructorApplyArityPanics(t *testing.T) {
	ctorA, _, b := hierarchy()
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch must panic")
		}
	}()
	ctorA.Apply(b.Int, b.String)
}
