package types

import "repro/internal/governor"

// Unify implements type unification (Definition 3.2): it computes a
// substitution σ such that σ·t1 <: t2, or returns nil when no such
// substitution exists.
//
//	unify(α, t)                         = [α ↦ t]
//	unify((Λα.t)t̄1, (Λα.t)t̄2)          = pointwise unification of arguments
//	unify(t1, t2), t1 ∉ TypeParam       = unify via the supertype chain
//
// The paper's third rule climbs S(t2); soundness of the σt1 <: t2 goal
// additionally requires climbing S(t1) (if σ·S(t1) <: t2 then σ·t1 <: t2 by
// transitivity, while the converse direction is a candidate-producing
// heuristic that callers re-check, exactly as Algorithm 1 does with its
// explicit σr <: t test). Unify therefore tries the subtype side's
// supertype chain; callers keep the final conformance check.
//
// Bounds are respected: binding α ↦ t fails when t does not conform to α's
// upper bound. (The paper's KT-48765 is precisely a compiler forgetting
// this check; the reference checker must not.)
func Unify(t1, t2 Type) *Substitution { return UnifyB(nil, t1, t2) }

// UnifyB is Unify metered by a governor budget (nil = unmetered).
func UnifyB(b *governor.Budget, t1, t2 Type) *Substitution {
	sigma := NewSubstitution()
	if unifyInto(b, t1, t2, sigma, true) && groundVerified(b, sigma, t1, t2) {
		return sigma
	}
	return nil
}

// groundVerified rejects heuristic successes that are already refutable:
// when σ·t1 is fully ground, the two sides must be subtype-related in one
// direction or the other. (Unification serves two roles: σ·t1 <: t2 for
// return-type resolution, and t2 <: σ·t1 for argument-driven inference —
// the supertype-chain climbs over-approximate both, and callers of
// partially bound results re-check the conformance they need.)
func groundVerified(b *governor.Budget, sigma *Substitution, t1, t2 Type) bool {
	inst := sigma.ApplyB(b, t1)
	if HasFreeParameters(inst) || HasFreeParameters(t2) {
		return true
	}
	return IsSubtypeB(b, inst, t2) || IsSubtypeB(b, t2, inst)
}

// UnifyUnchecked is Unify without the upper-bound conformance check on
// parameter bindings. Simulated compiler bugs use it to model unsound
// inference engines; the reference checker never does.
func UnifyUnchecked(t1, t2 Type) *Substitution { return UnifyUncheckedB(nil, t1, t2) }

// UnifyUncheckedB is UnifyUnchecked metered by a governor budget.
func UnifyUncheckedB(b *governor.Budget, t1, t2 Type) *Substitution {
	sigma := NewSubstitution()
	if unifyInto(b, t1, t2, sigma, false) && groundVerified(b, sigma, t1, t2) {
		return sigma
	}
	return nil
}

func unifyInto(b *governor.Budget, t1, t2 Type, sigma *Substitution, checkBounds bool) bool {
	if t1 == nil || t2 == nil {
		return false
	}
	b.Charge(1)
	b.Enter()
	ok := unifyIntoWalk(b, t1, t2, sigma, checkBounds)
	b.Exit()
	return ok
}

func unifyIntoWalk(b *governor.Budget, t1, t2 Type, sigma *Substitution, checkBounds bool) bool {
	// unify(α, t) = [α ↦ t], provided the bound admits t.
	if p, ok := t1.(*Parameter); ok {
		target := stripProjection(t2)
		if prev, bound := sigma.Lookup(p); bound {
			return prev.Equal(target)
		}
		if checkBounds && !boundAdmits(b, p, target, sigma) {
			return false
		}
		sigma.Bind(p, target)
		return true
	}
	// Apply the accumulated substitution once; the instantiation is reused
	// for the conformance probe, the groundness check, and — unless the
	// supertype climbs below extended sigma — the ground fallback.
	inst := sigma.ApplyB(b, t1)
	bindings0 := sigma.Len()
	if inst.Equal(t2) || IsSubtypeB(b, inst, t2) {
		// Already conformant under the accumulated substitution; make
		// sure remaining free parameters of t1 also get bound when the
		// shapes line up, but structural success is enough here.
		if !HasFreeParameters(inst) {
			return true
		}
	}

	a1, ok1 := t1.(*App)
	a2, ok2 := t2.(*App)
	if ok1 && ok2 && a1.Ctor.Equal(a2.Ctor) {
		// unify((Λα.t)t̄1, (Λα.t)t̄2): pointwise on arguments. A malformed
		// application with mismatched arity unifies with nothing.
		n := len(a1.Ctor.Params)
		if len(a1.Args) != n || len(a2.Args) != n {
			return false
		}
		for i := range a1.Args {
			if !unifyArg(b, a1.Args[i], a2.Args[i], sigma, checkBounds) {
				return false
			}
		}
		return true
	}

	// Climb the subtype side's supertype chain: if σ·S(t1) <: t2 then
	// σ·t1 <: t2.
	if ok1 {
		sup := SupertypeB(b, a1)
		if _, isTop := sup.(Top); !isTop {
			if unifyInto(b, sup, t2, sigma, checkBounds) {
				return true
			}
		}
	}
	// Heuristic direction from the paper: unify(t1, S(t2)). Callers
	// re-check σt1 <: t2 afterwards, so over-approximation is safe.
	if ok2 {
		sup := SupertypeB(b, a2)
		if _, isTop := sup.(Top); !isTop {
			if unifyInto(b, t1, sup, sigma, checkBounds) {
				return true
			}
		}
	}
	// Ground fallback: no parameters left to bind, pure subtype check.
	// The failed climbs above may still have bound parameters (they bind
	// before refuting); re-instantiate only in that case.
	if sigma.Len() != bindings0 {
		inst = sigma.ApplyB(b, t1)
	}
	return IsSubtypeB(b, inst, t2)
}

func unifyArg(b *governor.Budget, a1, a2 Type, sigma *Substitution, checkBounds bool) bool {
	b.Charge(1)
	p1, proj1 := a1.(*Projection)
	p2, proj2 := a2.(*Projection)
	switch {
	case proj1 && proj2:
		return unifyInto(b, p1.Bound, p2.Bound, sigma, checkBounds)
	case proj1:
		// A projected position is a containment constraint, not an
		// equality: bind any parameters inside the bound structurally,
		// otherwise accept when the concrete side is contained
		// (t2 <: bound for `out`, bound <: t2 for `in`).
		if HasFreeParameters(p1.Bound) {
			return unifyInto(b, p1.Bound, a2, sigma, checkBounds)
		}
		if p1.Var == Covariant {
			return IsSubtypeB(b, a2, sigma.ApplyB(b, p1.Bound))
		}
		return IsSubtypeB(b, sigma.ApplyB(b, p1.Bound), a2)
	case proj2:
		return unifyInto(b, a1, p2.Bound, sigma, checkBounds)
	default:
		if p, ok := a1.(*Parameter); ok {
			if prev, bound := sigma.Lookup(p); bound {
				return prev.Equal(a2)
			}
			if checkBounds && !boundAdmits(b, p, a2, sigma) {
				return false
			}
			sigma.Bind(p, a2)
			return true
		}
		if na1, ok := a1.(*App); ok {
			if na2, ok2 := a2.(*App); ok2 && na1.Ctor.Equal(na2.Ctor) {
				n := len(na1.Ctor.Params)
				if len(na1.Args) != n || len(na2.Args) != n {
					return false
				}
				for i := range na1.Args {
					if !unifyArg(b, na1.Args[i], na2.Args[i], sigma, checkBounds) {
						return false
					}
				}
				return true
			}
		}
		// Invariant positions demand equality of ground types.
		return sigma.ApplyB(b, a1).Equal(a2)
	}
}

// boundAdmits reports whether binding p ↦ t respects p's upper bound under
// the substitution accumulated so far (the bound itself may mention other
// parameters, as in fun <T, K : T>).
func boundAdmits(b *governor.Budget, p *Parameter, t Type, sigma *Substitution) bool {
	bound := sigma.ApplyB(b, p.UpperBound())
	if HasFreeParameters(bound) {
		// Bound still mentions unbound parameters; defer judgement.
		return true
	}
	return IsSubtypeB(b, t, bound)
}

// UnifyPrime implements the unify' variant of Section 3.3.2, which detects
// dependent type parameters between two type applications:
//
//	unify'((Λα.t)t̄1, (Λα.t)t̄2) = [α ↦ α]   if t̄1 = t̄2
//	unify'((Λα1.t1)t̄2, (Λα2.t3)t̄4) = [α2 ↦ α1]  if the hierarchies relate
//
// Operationally: when the two applications are hierarchy-related (t2's
// constructor is reachable from t1's, or vice versa) and a type-parameter
// position of one flows into a position of the other, the result maps the
// subtype side's parameter to the supertype side's. UnifyPrime also maps
// parameter positions to the *concrete* types they are instantiated with,
// which the type-graph builder turns into inf-edges.
func UnifyPrime(t1, t2 Type) *Substitution { return UnifyPrimeB(nil, t1, t2) }

// UnifyPrimeB is UnifyPrime metered by a governor budget.
func UnifyPrimeB(b *governor.Budget, t1, t2 Type) *Substitution {
	sigma := NewSubstitution()
	a1, ok1 := t1.(*App)
	a2, ok2 := t2.(*App)
	if !ok1 || !ok2 {
		// Fall back: a parameter against anything maps directly.
		if p, ok := t2.(*Parameter); ok && t1 != nil {
			sigma.Bind(p, t1)
			return sigma
		}
		return sigma
	}
	if a1.Ctor.Equal(a2.Ctor) && sameArity(a1, a2) {
		for i := range a1.Args {
			recordDependency(a1.Args[i], a2.Args[i], a2.Ctor.Params[i], sigma)
		}
		return sigma
	}
	// Walk a2's supertype chain looking for a1's constructor, tracking the
	// substituted arguments (class B<T> : A<T> relates B's T to A's).
	for _, sup := range SuperChainB(b, a2) {
		if sa, ok := sup.(*App); ok && sa.Ctor.Equal(a1.Ctor) && sameArity(sa, a1) {
			for i := range sa.Args {
				recordDependency(a1.Args[i], sa.Args[i], a1.Ctor.Params[i], sigma)
			}
			return sigma
		}
	}
	// Or a1's chain for a2's constructor.
	for _, sup := range SuperChainB(b, a1) {
		if sa, ok := sup.(*App); ok && sa.Ctor.Equal(a2.Ctor) && sameArity(sa, a2) {
			for i := range sa.Args {
				recordDependency(sa.Args[i], a2.Args[i], a2.Ctor.Params[i], sigma)
			}
			return sigma
		}
	}
	return sigma
}

// sameArity reports that both applications carry exactly as many arguments
// as their (shared) constructor has parameters, so pointwise loops over
// one side may index the other.
func sameArity(a, b *App) bool {
	n := len(a.Ctor.Params)
	return len(a.Args) == n && len(b.Args) == n
}

// recordDependency maps the parameter on the "to" side to whatever stands
// on the "from" side (a parameter for [α2 ↦ α1] dependencies, or a concrete
// type for instantiation edges).
func recordDependency(from, to Type, fallback *Parameter, sigma *Substitution) {
	from = stripProjection(from)
	to = stripProjection(to)
	if p, ok := to.(*Parameter); ok {
		sigma.Bind(p, from)
		return
	}
	if p, ok := from.(*Parameter); ok {
		sigma.Bind(p, to)
		return
	}
	// Both concrete: recurse into nested applications so A<B<T>> vs
	// A<B<Int>> still records T ↦ Int.
	fa, okf := from.(*App)
	ta, okt := to.(*App)
	if okf && okt && fa.Ctor.Equal(ta.Ctor) && sameArity(fa, ta) {
		for i := range fa.Args {
			recordDependency(fa.Args[i], ta.Args[i], ta.Ctor.Params[i], sigma)
		}
		return
	}
	// Identity rule of unify': both sides concrete and equal records the
	// instantiation of the position's own parameter ([α ↦ α] if t1 = t2).
	if fallback != nil && from.Equal(to) {
		sigma.Bind(fallback, from)
	}
}
